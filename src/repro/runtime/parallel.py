"""Process-parallel registry analysis.

Table III re-runs the whole interpret → profile → detect → simulate stack
for every registry program; the runs are completely independent, so this
module fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Guarantees:

* **Deterministic ordering** — results come back in the order the names
  were given (registry order by default), independent of worker completion
  order (``Executor.map`` semantics).
* **Parallel ≡ serial** — each worker parses its program from source and
  calls the analysis engine directly, bypassing every in-process cache a
  forked child might inherit; the analysis itself is deterministic, and
  :class:`BenchmarkOutcome` carries the canonical profile digest so equality
  is checkable down to the serialized profile bytes.
* **Compact results** — workers return plain-data summaries (labels,
  pipeline coefficients, simulated speedups, digests), not multi-megabyte
  :class:`AnalysisResult` objects, keeping pickling off the critical path.

An optional shared profile cache directory lets workers reuse on-disk
profiles (writes are atomic, so concurrent workers are safe).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class BenchmarkOutcome:
    """Picklable summary of one benchmark's end-to-end analysis."""

    name: str
    suite: str
    loc: int
    label: str
    primary_share: float
    best_speedup: float
    best_threads: int
    #: one (loop_x, loop_y, a, b, efficiency) tuple per detected pipeline
    pipelines: tuple[tuple[int, int, float, float, float], ...]
    #: sha256 of the canonical profile JSON — byte-level profile identity
    profile_digest: str


def analyze_one(name: str, cache_dir: str | None = None) -> BenchmarkOutcome:
    """Analyze one registry benchmark from scratch; used as the pool worker.

    Deliberately avoids ``registry.analyze_benchmark`` (its ``lru_cache``
    would be inherited by forked workers and could mask real recomputation)
    and re-parses the program from its source text.
    """
    from repro.bench_programs.registry import get_benchmark
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program
    from repro.patterns.engine import analyze, primary_pattern_share, summarize_patterns
    from repro.profiling.serialize import profile_digest
    from repro.sim import plan_and_simulate

    spec = get_benchmark(name)
    program = parse_program(spec.source)
    validate_program(program)
    cache = None
    if cache_dir is not None:
        from repro.profiling.cache import ProfileCache

        cache = ProfileCache(root=cache_dir)
    result = analyze(
        program,
        spec.entry,
        spec.arg_sets(),
        hotspot_threshold=spec.hotspot_threshold,
        min_pairs=spec.min_pairs,
        cache=cache,
    )
    outcome = plan_and_simulate(result)
    return BenchmarkOutcome(
        name=spec.name,
        suite=spec.suite,
        loc=spec.loc,
        label=summarize_patterns(result),
        primary_share=primary_pattern_share(result),
        best_speedup=outcome.best_speedup,
        best_threads=outcome.best_threads,
        pipelines=tuple(
            (p.loop_x, p.loop_y, p.a, p.b, p.efficiency) for p in result.pipelines
        ),
        profile_digest=profile_digest(result.profile),
    )


def analyze_registry(
    names: Sequence[str] | None = None,
    max_workers: int | None = None,
    cache_dir: str | None = None,
    parallel: bool = True,
) -> list[BenchmarkOutcome]:
    """Analyze registry benchmarks, optionally across worker processes.

    Results are returned in the order of *names* (registry order when None)
    whichever path runs.  ``parallel=False`` runs the identical per-program
    code in this process — the reference for equality testing.
    """
    if names is None:
        from repro.bench_programs.registry import all_benchmarks

        names = [spec.name for spec in all_benchmarks()]
    if not parallel:
        return [analyze_one(name, cache_dir) for name in names]
    if max_workers is None:
        max_workers = min(len(names), os.cpu_count() or 1) or 1
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(analyze_one, names, [cache_dir] * len(names)))
