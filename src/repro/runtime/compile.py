"""MiniC → Python closure compiler.

The tree-walking interpreter pays a per-node price on every execution of
every expression: a ``type()`` dispatch, attribute loads on the AST node,
name resolution through two dict lookups, and a ``_charge`` call per
operator.  This module removes all of it by lowering each function body
*once* into nested Python closures:

* **Pre-resolved variable slots** — each function's flat namespace is
  compiled to a plain list (``frame``), one slot per distinct local name
  plus one cell per declaration site (mirroring the interpreter's
  ``vars`` / ``decl_slots`` split).  Names that never appear as locals
  bind directly to the global's storage object at compile time.
* **Pre-bound operators** — every ``BinOp`` compiles to a closure
  specialized for its operator, with C division/modulo semantics inlined.
* **Hoisted constants** — literal-only subtrees fold to a constant at
  compile time (only for operators that cannot raise).
* **Static cost summarization** — the interpreter charges IR cost one
  operator at a time; the compiler sums each statement's statically known
  cost per source line and issues one ``charge`` call.  This is exact:
  within a window bounded by region transitions (``ENTER``/``EXIT``/
  ``ITER`` flushes), every profiler cost consumer is additive per
  ``(activation, line)``, so merging and reordering charges inside one
  statement cannot change any profile.  Conditional costs (short-circuit
  right operands, first-execution array-declaration extents) and call
  costs stay dynamic, exactly where the interpreter charges them.

The event stream is replicated access-for-access: ``EV_READ``/``EV_WRITE``
/ ``EV_STMT`` / region events are emitted in exactly the interpreter's
order, so a :class:`~repro.profiling.profiler.Profiler` fed by this engine
produces a byte-identical profile digest (the differential suite in
``tests/test_compile_engine.py`` enforces this across the benchmark
registry and seeded generated programs).  Only ``EV_COST`` events may
coalesce differently — the one transformation the profile is provably
blind to.

Semantics (error messages included) mirror ``runtime/interpreter.py``; the
tree-walker remains the executable reference.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import InterpreterError, StepLimitExceeded
from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    IntLit,
    Program,
    Return,
    Stmt,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
    walk_stmts,
)
from repro.runtime import costs
from repro.runtime.events import (
    EV_COST,
    EV_ENTER_FUNC,
    EV_ENTER_LOOP,
    EV_EXIT_FUNC,
    EV_EXIT_LOOP,
    EV_ITER,
    EV_READ,
    EV_STMT,
    EV_WRITE,
    Sink,
)
from repro.runtime.interpreter import (
    EVENT_CHUNK,
    RunResult,
    _c_int_div,
    _c_int_mod,
    build_globals,
)
from repro.runtime.intrinsics import INTRINSICS
from repro.runtime.sites import get_site_table
from repro.runtime.values import AddressSpace, ArrayValue, ScalarCell

_LOAD = costs.LOAD
_STORE = costs.STORE
_ARITH = costs.ARITH
_COMPARE = costs.COMPARE
_UNARY = costs.UNARY
_BRANCH = costs.BRANCH
_INDEX = costs.INDEX
_CALL = costs.CALL
_RETURN = costs.RETURN

_CMP_OPS = frozenset(("==", "!=", "<", "<=", ">", ">="))

# Control-flow signals threaded through statement closures as return values
# (the interpreter uses exceptions; sentinel returns are cheaper and make
# the propagation explicit).  A statement closure returns None for normal
# completion, one of these two for break/continue, or the _RET sentinel —
# the return *value* travels in the engine's side-channel cell.
_BRK = object()
_CNT = object()
_RET = object()

_DYN = object()  # "not a compile-time constant" marker


def _arith_fn(op: str, line: int) -> Callable[[Any, Any], Any]:
    """A two-argument callable applying *op* with C semantics."""
    if op == "+":
        return lambda a, b: a + b
    if op == "-":
        return lambda a, b: a - b
    if op == "*":
        return lambda a, b: a * b
    if op == "/":

        def div(a, b):
            if isinstance(a, int) and isinstance(b, int):
                return _c_int_div(a, b, line)
            if b == 0:
                raise InterpreterError("float division by zero", line=line)
            return a / b

        return div
    if op == "%":

        def mod(a, b):
            if isinstance(a, int) and isinstance(b, int):
                return _c_int_mod(a, b, line)
            raise InterpreterError("% requires integer operands", line=line)

        return mod
    if op == "==":
        return lambda a, b: 1 if a == b else 0
    if op == "!=":
        return lambda a, b: 1 if a != b else 0
    if op == "<":
        return lambda a, b: 1 if a < b else 0
    if op == "<=":
        return lambda a, b: 1 if a <= b else 0
    if op == ">":
        return lambda a, b: 1 if a > b else 0
    if op == ">=":
        return lambda a, b: 1 if a >= b else 0

    def bad(a, b):
        raise InterpreterError(f"unknown operator {op!r}", line=line)

    return bad


def _add_cost(dst: dict[int, int], line: int, amount: int) -> None:
    if amount:
        dst[line] = dst.get(line, 0) + amount


class _FunctionCompiler:
    """Compiles one function body into closures over an engine's state."""

    def __init__(self, engine: "CompiledEngine", func: Function) -> None:
        self.engine = engine
        self.func = func
        self.emit = engine.sink is not None
        # flat namespace: one frame index per distinct local name
        self.name_ix: dict[str, int] = {}
        # what a name's frame slot can hold, for check elision:
        # "scalar" | "array" | "mixed"; params are always bound at entry
        self.name_kind: dict[str, str] = {}
        self.param_names: set[str] = set()
        for param in func.params:
            self._add_name(param.name, "array" if param.is_array else "scalar")
            self.param_names.add(param.name)
        decls: list[VarDecl] = []
        for stmt in walk_stmts(func.body):
            if type(stmt) is VarDecl:
                decls.append(stmt)
                self._add_name(stmt.name, "array" if stmt.dims else "scalar")
        # one persistent cell slot per declaration site (allocated lazily,
        # reused across loop iterations — interpreter's decl_slots)
        base = len(self.name_ix)
        self.cell_ix: dict[int, int] = {
            id(stmt): base + i for i, stmt in enumerate(decls)
        }
        self.frame_size = base + len(decls)

    def _add_name(self, name: str, kind: str) -> None:
        if name not in self.name_ix:
            self.name_ix[name] = len(self.name_ix)
            self.name_kind[name] = kind
        elif self.name_kind[name] != kind:
            self.name_kind[name] = "mixed"

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def _resolve(self, name: str, line: int) -> Callable[[list], Any]:
        """A closure returning the slot bound to *name* (interpreter's
        ``_lookup``): current frame binding, else global, else error."""
        ix = self.name_ix.get(name)
        gslot = self.engine.globals.get(name)
        if ix is None:
            if gslot is None:

                def missing(frame):
                    raise InterpreterError(
                        f"use of undeclared variable {name!r}", line=line
                    )

                return missing
            return lambda frame: gslot
        if name in self.param_names:
            # params are bound before the body runs; a later declaration
            # only ever rebinds to another live slot
            return lambda frame: frame[ix]
        if gslot is None:

            def local(frame):
                s = frame[ix]
                if s is None:
                    raise InterpreterError(
                        f"use of undeclared variable {name!r}", line=line
                    )
                return s

            return local

        def local_or_global(frame):
            s = frame[ix]
            return gslot if s is None else s

        return local_or_global

    def _raiser(self, message: str, line: int) -> Callable[[list], Any]:
        def fn(frame):
            raise InterpreterError(message, line=line)

        return fn

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def expr(self, e: Expr) -> tuple[Callable[[list], Any], dict[int, int], Any]:
        """Compile *e* → ``(fn, static_cost, const_value)``.

        ``fn`` performs all memory events and *dynamic* charges itself;
        ``static_cost`` (line → amount) is owed by the enclosing statement,
        which issues it in one merged charge.  ``const_value`` is ``_DYN``
        unless the subtree folded to a compile-time constant.
        """
        kind = type(e)
        if kind is IntLit or kind is FloatLit:
            v = e.value
            return (lambda frame: v), {}, v
        if kind is BinOp:
            return self._expr_binop(e)
        if kind is VarRef:
            return self._expr_varref(e)
        if kind is ArrayRef:
            return self._expr_arrayref(e)
        if kind is UnaryOp:
            return self._expr_unary(e)
        if kind is Call:
            return self._expr_call(e)
        line = getattr(e, "line", None)
        return self._raiser(f"unknown expression {e!r}", line), {}, _DYN

    def _expr_binop(self, e: BinOp):
        op = e.op
        line = e.line
        if op == "&&" or op == "||":
            lf, lcost, _ = self.expr(e.left)
            rf, rcost, _ = self.expr(e.right)
            cost = dict(lcost)
            _add_cost(cost, line, _ARITH)
            # the right operand's cost is conditional: charged only on the
            # iterations that actually evaluate it, as the interpreter does
            charge_right = self._charger(rcost)
            if op == "&&":

                def fn(frame):
                    if not lf(frame):
                        return 0
                    charge_right()
                    return 1 if rf(frame) else 0

            else:

                def fn(frame):
                    if lf(frame):
                        return 1
                    charge_right()
                    return 1 if rf(frame) else 0

            return fn, cost, _DYN
        lf, lcost, lconst = self.expr(e.left)
        rf, rcost, rconst = self.expr(e.right)
        cost = dict(lcost)
        for ln, amt in rcost.items():
            _add_cost(cost, ln, amt)
        _add_cost(cost, line, _COMPARE if op in _CMP_OPS else _ARITH)
        if lconst is not _DYN and rconst is not _DYN and op not in ("/", "%"):
            # fold operators that cannot raise; cost is still charged
            v = _arith_fn(op, line)(lconst, rconst)
            return (lambda frame: v), cost, v
        if op == "+":
            fn = lambda frame: lf(frame) + rf(frame)
        elif op == "-":
            fn = lambda frame: lf(frame) - rf(frame)
        elif op == "*":
            fn = lambda frame: lf(frame) * rf(frame)
        elif op == "<":
            fn = lambda frame: 1 if lf(frame) < rf(frame) else 0
        elif op == "<=":
            fn = lambda frame: 1 if lf(frame) <= rf(frame) else 0
        elif op == ">":
            fn = lambda frame: 1 if lf(frame) > rf(frame) else 0
        elif op == ">=":
            fn = lambda frame: 1 if lf(frame) >= rf(frame) else 0
        elif op == "==":
            fn = lambda frame: 1 if lf(frame) == rf(frame) else 0
        elif op == "!=":
            fn = lambda frame: 1 if lf(frame) != rf(frame) else 0
        else:
            apply = _arith_fn(op, line)
            fn = lambda frame: apply(lf(frame), rf(frame))
        return fn, cost, _DYN

    def _expr_varref(self, e: VarRef):
        name = e.name
        line = e.line
        cost = {line: _LOAD}
        sid = getattr(e, "_sid", -1)
        emit = self.emit
        append = self.engine._events.append
        nkind = self.name_kind.get(name)
        if name in self.param_names and nkind == "scalar":
            ix = self.name_ix[name]
            if emit:

                def fn(frame):
                    s = frame[ix]
                    append((EV_READ, s.addr, sid))
                    return s.value

            else:

                def fn(frame):
                    return frame[ix].value

            return fn, cost, _DYN
        if nkind is None:
            gslot = self.engine.globals.get(name)
            if gslot is None:
                return (
                    self._raiser(f"use of undeclared variable {name!r}", line),
                    cost,
                    _DYN,
                )
            if type(gslot) is not ScalarCell:
                return (
                    self._raiser(f"array {name!r} used as a scalar", line),
                    cost,
                    _DYN,
                )
            addr = gslot.addr
            if emit:

                def fn(frame):
                    append((EV_READ, addr, sid))
                    return gslot.value

            else:

                def fn(frame):
                    return gslot.value

            return fn, cost, _DYN
        resolve = self._resolve(name, line)
        gslot = self.engine.globals.get(name)
        if nkind == "array" and (gslot is None or not isinstance(gslot, ScalarCell)):
            # every binding this name can take is an array
            return (
                self._raiser(f"array {name!r} used as a scalar", line),
                cost,
                _DYN,
            )
        # elide the type check only when every reachable binding — local
        # declarations, parameters, and the global fallback hit before a
        # local declaration executes — is a scalar cell
        check = nkind != "scalar" or isinstance(gslot, ArrayValue)
        if emit:

            def fn(frame):
                s = resolve(frame)
                if check and type(s) is not ScalarCell:
                    raise InterpreterError(
                        f"array {name!r} used as a scalar", line=line
                    )
                append((EV_READ, s.addr, sid))
                return s.value

        else:

            def fn(frame):
                s = resolve(frame)
                if check and type(s) is not ScalarCell:
                    raise InterpreterError(
                        f"array {name!r} used as a scalar", line=line
                    )
                return s.value

        return fn, cost, _DYN

    def _array_slot(self, name: str, line: int) -> Callable[[list], ArrayValue]:
        """Resolve *name* to an :class:`ArrayValue` (with the interpreter's
        "is not an array" check elided when the binding is statically an
        array)."""
        nkind = self.name_kind.get(name)
        if nkind is None:
            gslot = self.engine.globals.get(name)
            if gslot is None:
                return self._raiser(f"use of undeclared variable {name!r}", line)
            if not isinstance(gslot, ArrayValue):
                return self._raiser(f"{name!r} is not an array", line)
            return lambda frame: gslot
        resolve = self._resolve(name, line)
        gslot = self.engine.globals.get(name)
        if nkind == "array" and (gslot is None or isinstance(gslot, ArrayValue)):
            return resolve

        def fn(frame):
            s = resolve(frame)
            if not isinstance(s, ArrayValue):
                raise InterpreterError(f"{name!r} is not an array", line=line)
            return s

        return fn

    def _flat_addr(
        self, name: str, line: int, index_fns: list
    ) -> Callable[[list, ArrayValue], int]:
        """Bounds-checked row-major flat offset, rank-specialized.

        Replicates :meth:`ArrayValue.flat_index` including error text.
        """
        n = len(index_fns)
        if n == 1:
            ix0 = index_fns[0]

            def flat1(frame, slot):
                i0 = int(ix0(frame))
                shape = slot.shape
                if len(shape) != 1:
                    raise InterpreterError(
                        f"array {slot.name!r} expects {len(shape)} indices, got 1",
                        line=line,
                    )
                if i0 < 0 or i0 >= shape[0]:
                    raise InterpreterError(
                        f"index {i0} out of bounds for extent {shape[0]} "
                        f"of array {slot.name!r}",
                        line=line,
                    )
                return i0

            return flat1
        if n == 2:
            ix0, ix1 = index_fns

            def flat2(frame, slot):
                i0 = int(ix0(frame))
                i1 = int(ix1(frame))
                shape = slot.shape
                if len(shape) != 2:
                    raise InterpreterError(
                        f"array {slot.name!r} expects {len(shape)} indices, got 2",
                        line=line,
                    )
                s0, s1 = shape
                if i0 < 0 or i0 >= s0:
                    raise InterpreterError(
                        f"index {i0} out of bounds for extent {s0} "
                        f"of array {slot.name!r}",
                        line=line,
                    )
                if i1 < 0 or i1 >= s1:
                    raise InterpreterError(
                        f"index {i1} out of bounds for extent {s1} "
                        f"of array {slot.name!r}",
                        line=line,
                    )
                return i0 * s1 + i1

            return flat2
        fns = tuple(index_fns)

        def flatn(frame, slot):
            return slot.flat_index([int(f(frame)) for f in fns], line=line)

        return flatn

    def _expr_arrayref(self, e: ArrayRef):
        name = e.name
        line = e.line
        sid = getattr(e, "_sid", -1)
        slot_fn = self._array_slot(name, line)
        cost: dict[int, int] = {}
        index_fns = []
        for ix in e.indices:
            f, c, _ = self.expr(ix)
            index_fns.append(f)
            for ln, amt in c.items():
                _add_cost(cost, ln, amt)
        _add_cost(cost, line, _INDEX * len(index_fns) + _LOAD)
        flat_fn = self._flat_addr(name, line, index_fns)
        append = self.engine._events.append
        if self.emit:

            def fn(frame):
                slot = slot_fn(frame)
                flat = flat_fn(frame, slot)
                append((EV_READ, slot.base + flat, sid))
                return slot.data[flat]

        else:

            def fn(frame):
                slot = slot_fn(frame)
                return slot.data[flat_fn(frame, slot)]

        return fn, cost, _DYN

    def _expr_unary(self, e: UnaryOp):
        f, cost, const = self.expr(e.operand)
        cost = dict(cost)
        _add_cost(cost, e.line, _UNARY)
        if e.op == "-":
            if const is not _DYN:
                v = -const
                return (lambda frame: v), cost, v
            return (lambda frame: -f(frame)), cost, _DYN
        if e.op == "!":
            if const is not _DYN:
                v = 0 if const else 1
                return (lambda frame: v), cost, v
            return (lambda frame: 0 if f(frame) else 1), cost, _DYN
        op = e.op
        line = e.line

        def bad(frame):
            f(frame)
            raise InterpreterError(f"unknown unary operator {op!r}", line=line)

        return bad, cost, _DYN

    def _expr_call(self, e: Call):
        line = e.line
        if e.name in INTRINSICS:
            spec = INTRINSICS[e.name]
            cost: dict[int, int] = {}
            arg_fns = []
            for a in e.args:
                f, c, _ = self.expr(a)
                arg_fns.append(f)
                for ln, amt in c.items():
                    _add_cost(cost, ln, amt)
            _add_cost(cost, line, spec.cost)
            spec_fn = spec.fn
            name = e.name
            args = tuple(arg_fns)

            def fn(frame):
                values = [a(frame) for a in args]
                try:
                    return spec_fn(*values)
                except (ValueError, OverflowError, ZeroDivisionError) as exc:
                    raise InterpreterError(
                        f"intrinsic {name}() failed: {exc}", line=line
                    ) from exc

            return fn, cost, _DYN
        func = self.engine._functions.get(e.name)
        if func is None:
            return (
                self._raiser(f"call to unknown function {e.name!r}", line),
                {},
                _DYN,
            )
        if len(e.args) != len(func.params):
            return (
                self._raiser(
                    f"{e.name}() expects {len(func.params)} args, got {len(e.args)}",
                    line,
                ),
                {},
                _DYN,
            )
        cost = {}
        binders = []
        for param, arg in zip(func.params, e.args):
            if param.is_array:
                if not isinstance(arg, VarRef):
                    binders.append(
                        self._raiser(
                            f"array argument for {param.name!r} must be an array name",
                            line,
                        )
                    )
                    continue
                resolve = self._resolve(arg.name, arg.line)
                binders.append(
                    self._bind_array(resolve, arg.name, arg.line, line, param)
                )
            elif param.by_ref:
                if not isinstance(arg, VarRef):
                    binders.append(
                        self._raiser(
                            f"reference argument for {param.name!r} must be a variable",
                            line,
                        )
                    )
                    continue
                resolve = self._resolve(arg.name, arg.line)
                binders.append(self._bind_ref(resolve, arg.name, arg.line))
            else:
                f, c, _ = self.expr(arg)
                for ln, amt in c.items():
                    _add_cost(cost, ln, amt)
                conv = int if param.type == "int" else float
                binders.append(lambda frame, f=f, conv=conv: conv(f(frame)))
        binders_t = tuple(binders)
        engine = self.engine
        fname = e.name
        inv_cell: list = []

        def fn(frame):
            bound = [b(frame) for b in binders_t]
            if inv_cell:
                inv = inv_cell[0]
            else:
                inv = engine._get_invoke(fname)
                inv_cell.append(inv)
            return inv(bound, line)

        return fn, cost, _DYN

    @staticmethod
    def _bind_array(resolve, arg_name: str, arg_line: int, call_line: int, param):
        rank = param.array_rank
        pname = param.name

        def bind(frame):
            slot = resolve(frame)
            if not isinstance(slot, ArrayValue):
                raise InterpreterError(f"{arg_name!r} is not an array", line=arg_line)
            if slot.rank != rank:
                raise InterpreterError(
                    f"array {arg_name!r} has rank {slot.rank}, parameter "
                    f"{pname!r} expects {rank}",
                    line=call_line,
                )
            return slot

        return bind

    @staticmethod
    def _bind_ref(resolve, arg_name: str, arg_line: int):
        def bind(frame):
            slot = resolve(frame)
            if not isinstance(slot, ScalarCell):
                raise InterpreterError(f"{arg_name!r} is not a scalar", line=arg_line)
            return slot

        return bind

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _charger(self, cost: dict[int, int]) -> Callable[[], None]:
        """A zero-argument closure issuing the merged static charges."""
        charge = self.engine._charge
        items = tuple((ln, amt) for ln, amt in cost.items() if amt)
        if not items:
            return lambda: None
        if len(items) == 1:
            ln, amt = items[0]
            return lambda: charge(ln, amt)

        def do():
            for ln, amt in items:
                charge(ln, amt)

        return do

    def _wrap(self, line: int, cost: dict[int, int], core):
        """Statement prologue: chunk check, ``EV_STMT``, static charges."""
        charge = self.engine._charge
        items = tuple((ln, amt) for ln, amt in cost.items() if amt)
        if self.emit:
            events = self.engine._events
            append = events.append
            flush_events = self.engine._flush_events
            ev = (EV_STMT, line)
            if len(items) == 1:
                cl, ca = items[0]

                def fn(frame):
                    if len(events) >= EVENT_CHUNK:
                        flush_events()
                    append(ev)
                    charge(cl, ca)
                    return core(frame)

            elif not items:

                def fn(frame):
                    if len(events) >= EVENT_CHUNK:
                        flush_events()
                    append(ev)
                    return core(frame)

            else:

                def fn(frame):
                    if len(events) >= EVENT_CHUNK:
                        flush_events()
                    append(ev)
                    for ln, amt in items:
                        charge(ln, amt)
                    return core(frame)

        else:
            if len(items) == 1:
                cl, ca = items[0]

                def fn(frame):
                    charge(cl, ca)
                    return core(frame)

            elif not items:
                fn = core
            else:

                def fn(frame):
                    for ln, amt in items:
                        charge(ln, amt)
                    return core(frame)

        return fn

    def body(self, stmts: list[Stmt]) -> Callable[[list], Any]:
        fns = tuple(self.stmt(s) for s in stmts)
        if not fns:
            return lambda frame: None
        if len(fns) == 1:
            return fns[0]

        def run_body(frame):
            for f in fns:
                r = f(frame)
                if r is not None:
                    return r
            return None

        return run_body

    def stmt(self, s: Stmt) -> Callable[[list], Any]:
        kind = type(s)
        if kind is Assign:
            return self._stmt_assign(s)
        if kind is VarDecl:
            return self._stmt_decl(s)
        if kind is If:
            return self._stmt_if(s)
        if kind is For:
            return self._stmt_for(s)
        if kind is While:
            return self._stmt_while(s)
        if kind is Return:
            return self._stmt_return(s)
        if kind is ExprStmt:
            f, cost, _ = self.expr(s.expr)

            def core(frame):
                f(frame)
                return None

            return self._wrap(s.line, cost, core)
        if kind is Break:
            return self._wrap(s.line, {}, lambda frame: _BRK)
        if kind is Continue:
            return self._wrap(s.line, {}, lambda frame: _CNT)
        line = s.line
        return self._wrap(
            line, {}, self._raiser(f"unknown statement {s!r}", line)
        )

    def _stmt_assign(self, s: Assign):
        line = s.line
        target = s.target
        emit = self.emit
        append = self.engine._events.append
        vf, vcost, _ = self.expr(s.value)
        if isinstance(target, ArrayLV):
            slot_fn = self._array_slot(target.name, line)
            cost: dict[int, int] = {}
            index_fns = []
            for ix in target.indices:
                f, c, _ = self.expr(ix)
                index_fns.append(f)
                for ln, amt in c.items():
                    _add_cost(cost, ln, amt)
            _add_cost(cost, line, _INDEX * len(index_fns))
            flat_fn = self._flat_addr(target.name, line, index_fns)
            for ln, amt in vcost.items():
                _add_cost(cost, ln, amt)
            sid_w = getattr(s, "_sid_write", -1)
            if s.op == "=":
                _add_cost(cost, line, _STORE)

                def core(frame):
                    slot = slot_fn(frame)
                    flat = flat_fn(frame, slot)
                    value = vf(frame)
                    slot.data[flat] = (
                        int(value) if slot.dtype == "int" else float(value)
                    )
                    if emit:
                        append((EV_WRITE, slot.base + flat, sid_w))
                    return None

            else:
                _add_cost(cost, line, _LOAD + _ARITH + _STORE)
                apply = _arith_fn(s.op[0], line)
                sid_r = getattr(s, "_sid_read", -1)

                def core(frame):
                    slot = slot_fn(frame)
                    flat = flat_fn(frame, slot)
                    current = slot.data[flat]
                    if emit:
                        append((EV_READ, slot.base + flat, sid_r))
                    rhs = vf(frame)
                    value = apply(current, rhs)
                    slot.data[flat] = (
                        int(value) if slot.dtype == "int" else float(value)
                    )
                    if emit:
                        append((EV_WRITE, slot.base + flat, sid_w))
                    return None

            return self._wrap(line, cost, core)
        # scalar target
        name = target.name
        nkind = self.name_kind.get(name)
        resolve = self._resolve(name, line)
        gslot = self.engine.globals.get(name)
        if nkind is None and type(gslot) is ScalarCell:
            resolve = lambda frame: gslot
            check = False
        else:
            check = nkind != "scalar" or isinstance(gslot, ArrayValue)
        cost = dict(vcost)
        sid_w = getattr(s, "_sid_write", -1)
        if s.op == "=":
            _add_cost(cost, line, _STORE)

            def core(frame):
                slot = resolve(frame)
                if check and not isinstance(slot, ScalarCell):
                    raise InterpreterError(
                        f"cannot assign to array {name!r} without indices", line=line
                    )
                value = vf(frame)
                if isinstance(slot.value, int) and not isinstance(value, int):
                    value = int(value)
                slot.value = value
                if emit:
                    append((EV_WRITE, slot.addr, sid_w))
                return None

        else:
            _add_cost(cost, line, _LOAD + _ARITH + _STORE)
            apply = _arith_fn(s.op[0], line)
            sid_r = getattr(s, "_sid_read", -1)

            def core(frame):
                slot = resolve(frame)
                if check and not isinstance(slot, ScalarCell):
                    raise InterpreterError(
                        f"cannot assign to array {name!r} without indices", line=line
                    )
                if emit:
                    append((EV_READ, slot.addr, sid_r))
                rhs = vf(frame)
                value = apply(slot.value, rhs)
                if isinstance(slot.value, int) and not isinstance(value, int):
                    value = int(value)
                slot.value = value
                if emit:
                    append((EV_WRITE, slot.addr, sid_w))
                return None

        return self._wrap(line, cost, core)

    def _stmt_decl(self, s: VarDecl):
        line = s.line
        name_ix = self.name_ix[s.name]
        cell_ix = self.cell_ix[id(s)]
        space_alloc = self.engine.space.alloc
        emit = self.emit
        append = self.engine._events.append
        if s.dims:
            dim_fns = []
            dim_cost: dict[int, int] = {}
            for d in s.dims:
                f, c, _ = self.expr(d)
                dim_fns.append(f)
                for ln, amt in c.items():
                    _add_cost(dim_cost, ln, amt)
            # extent evaluation only happens on the allocating execution,
            # so its cost stays conditional (exactly the interpreter)
            charge_dims = self._charger(dim_cost)
            dims_t = tuple(dim_fns)
            dtype = s.type
            name = s.name
            space = self.engine.space

            def core(frame):
                slot = frame[cell_ix]
                if slot is None:
                    charge_dims()
                    extents = [int(f(frame)) for f in dims_t]
                    slot = ArrayValue(dtype, extents, space, name=name)
                    frame[cell_ix] = slot
                frame[name_ix] = slot
                return None

            return self._wrap(line, {}, core)
        dtype = s.type
        name = s.name
        zero = 0 if dtype == "int" else 0.0
        if s.init is None:

            def core(frame):
                slot = frame[cell_ix]
                if slot is None:
                    slot = ScalarCell(addr=space_alloc(1), value=zero, name=name)
                    frame[cell_ix] = slot
                frame[name_ix] = slot
                return None

            return self._wrap(line, {}, core)
        initf, icost, _ = self.expr(s.init)
        cost = dict(icost)
        _add_cost(cost, line, _STORE)
        conv = int if dtype == "int" else float
        sid = getattr(s, "_sid", -1)

        def core(frame):
            slot = frame[cell_ix]
            if slot is None:
                slot = ScalarCell(addr=space_alloc(1), value=zero, name=name)
                frame[cell_ix] = slot
            frame[name_ix] = slot
            value = initf(frame)
            slot.value = conv(value)
            if emit:
                append((EV_WRITE, slot.addr, sid))
            return None

        return self._wrap(line, cost, core)

    def _stmt_if(self, s: If):
        condf, cost, _ = self.expr(s.cond)
        cost = dict(cost)
        _add_cost(cost, s.line, _BRANCH)
        then_fn = self.body(s.then_body)
        else_fn = self.body(s.else_body)

        def core(frame):
            if condf(frame):
                return then_fn(frame)
            return else_fn(frame)

        return self._wrap(s.line, cost, core)

    def _stmt_return(self, s: Return):
        ret = self.engine._ret
        if s.value is None:

            def core(frame):
                ret[0] = None
                return _RET

            return self._wrap(s.line, {}, core)
        vf, cost, _ = self.expr(s.value)

        def core(frame):
            ret[0] = vf(frame)
            return _RET

        return self._wrap(s.line, cost, core)

    def _stmt_for(self, s: For):
        engine = self.engine
        emit = self.emit
        flush = engine._flush
        append = engine._events.append
        act = engine._act
        region = s.region_id
        line = s.line
        init_fn = self.stmt(s.init) if s.init is not None else None
        step_fn = self.stmt(s.step) if s.step is not None else None
        body_fn = self.body(s.body)
        if s.cond is not None:
            condf, ccost, _ = self.expr(s.cond)
            ccost = dict(ccost)
            _add_cost(ccost, line, _BRANCH)
            charge_cond = self._charger(ccost)
        else:
            condf = None
            charge_cond = None

        def core(frame):
            flush()
            act[0] = activation = act[0] + 1
            if emit:
                append((EV_ENTER_LOOP, region, activation, line))
            trips = 0
            r = None
            try:
                if init_fn is not None:
                    sig = init_fn(frame)
                    if sig is not None:  # pragma: no cover - grammar excludes
                        r = sig
                        return r
                while True:
                    if emit:
                        flush()
                        append((EV_ITER, region, trips))
                    if condf is not None:
                        charge_cond()
                        if not condf(frame):
                            break
                    sig = body_fn(frame)
                    if sig is not None:
                        if sig is _CNT:
                            pass
                        elif sig is _BRK:
                            trips += 1
                            break
                        else:
                            r = sig
                            break
                    if step_fn is not None:
                        step_fn(frame)
                    trips += 1
                return r
            finally:
                flush()
                if emit:
                    append((EV_EXIT_LOOP, region, activation, trips))

        return self._wrap(line, {}, core)

    def _stmt_while(self, s: While):
        engine = self.engine
        emit = self.emit
        flush = engine._flush
        append = engine._events.append
        act = engine._act
        region = s.region_id
        line = s.line
        body_fn = self.body(s.body)
        condf, ccost, _ = self.expr(s.cond)
        ccost = dict(ccost)
        _add_cost(ccost, line, _BRANCH)
        charge_cond = self._charger(ccost)

        def core(frame):
            flush()
            act[0] = activation = act[0] + 1
            if emit:
                append((EV_ENTER_LOOP, region, activation, line))
            trips = 0
            r = None
            try:
                while True:
                    if emit:
                        flush()
                        append((EV_ITER, region, trips))
                    charge_cond()
                    if not condf(frame):
                        break
                    sig = body_fn(frame)
                    if sig is not None:
                        if sig is _CNT:
                            pass
                        elif sig is _BRK:
                            trips += 1
                            break
                        else:
                            r = sig
                            break
                    trips += 1
                return r
            finally:
                flush()
                if emit:
                    append((EV_EXIT_LOOP, region, activation, trips))

        return self._wrap(line, {}, core)

    # ------------------------------------------------------------------
    # function entry
    # ------------------------------------------------------------------

    def compile_invoke(self) -> Callable[[list, int], Any]:
        engine = self.engine
        func = self.func
        emit = self.emit
        charge = engine._charge
        flush = engine._flush
        flush_events = engine._flush_events
        events = engine._events
        append = events.append
        act = engine._act
        ret = engine._ret
        space_alloc = engine.space.alloc
        region = func.region_id
        func_line = func.line
        body_fn = self.body(func.body)
        frame_size = self.frame_size
        # (frame index, shared storage?, sid, name) per parameter, in order
        plan = tuple(
            (
                self.name_ix[p.name],
                p.is_array or p.by_ref,
                getattr(p, "_sid", -1),
                p.name,
            )
            for p in func.params
        )
        n_value = sum(1 for p in func.params if not (p.is_array or p.by_ref))
        store_cost = _STORE * n_value

        def invoke(bound: list, call_line: int) -> Any:
            charge(call_line, _CALL)
            flush()
            act[0] = activation = act[0] + 1
            if emit:
                if len(events) >= EVENT_CHUNK:
                    flush_events()
                append((EV_ENTER_FUNC, region, activation, call_line))
                append((EV_STMT, func_line))
            frame = [None] * frame_size
            try:
                for (ix, shared, sid, pname), value in zip(plan, bound):
                    if shared:
                        frame[ix] = value
                    else:
                        cell = ScalarCell(
                            addr=space_alloc(1), value=value, name=pname
                        )
                        frame[ix] = cell
                        if emit:
                            append((EV_WRITE, cell.addr, sid))
                if store_cost:
                    charge(func_line, store_cost)
                sig = body_fn(frame)
                if sig is _RET:
                    result = ret[0]
                    ret[0] = None
                else:
                    result = None
                charge(func_line, _RETURN)
                return result
            finally:
                flush()
                if emit:
                    append((EV_EXIT_FUNC, region, activation))

        return invoke


class CompiledEngine:
    """Executes a MiniC :class:`Program` through compiled closures.

    Drop-in alternative to :class:`~repro.runtime.interpreter.Interpreter`:
    same constructor signature, same :meth:`run` contract, same event
    stream, same error behavior.  Compilation happens lazily per function
    the first time it is invoked and is cached for the engine's lifetime
    (one engine = one run's address space, like the interpreter).
    """

    def __init__(
        self,
        program: Program,
        sink: Sink | None = None,
        max_cost: int = 500_000_000,
    ) -> None:
        self.program = program
        self.sink = sink
        self.max_cost = max_cost
        self.space = AddressSpace()
        self._functions = {f.name: f for f in program.functions}
        self._events: list[tuple] = []
        self._tot = [0]  # running cost total (cell: closures mutate it)
        self._acc = [-1, 0]  # per-line cost accumulator [line, amount]
        self._act = [0]  # activation-id counter
        self._ret: list[Any] = [None]  # return-value side channel
        if sink is not None:
            sink.set_site_table(get_site_table(program))
        self.globals = build_globals(program, self.space)
        self._compiled: dict[str, Callable[[list, int], Any]] = {}
        self._make_plumbing()

    @property
    def total_cost(self) -> int:
        return self._tot[0]

    def _make_plumbing(self) -> None:
        max_cost = self.max_cost
        tot = self._tot
        budget_msg = (
            f"execution exceeded the cost budget of {max_cost} instructions"
        )
        sink = self.sink
        if sink is None:

            def charge(line: int, amount: int) -> None:
                tot[0] += amount
                if tot[0] > max_cost:
                    raise StepLimitExceeded(budget_msg)

            def flush() -> None:
                pass

            def flush_events() -> None:
                pass

        else:
            events = self._events
            acc = self._acc
            append = events.append

            def charge(line: int, amount: int) -> None:
                tot[0] += amount
                if tot[0] > max_cost:
                    raise StepLimitExceeded(budget_msg)
                if line != acc[0]:
                    if acc[1]:
                        append((EV_COST, acc[0], acc[1]))
                        acc[1] = 0
                    acc[0] = line
                acc[1] += amount

            def flush() -> None:
                if acc[1]:
                    append((EV_COST, acc[0], acc[1]))
                    acc[1] = 0

            consume = sink.consume_batch

            def flush_events() -> None:
                if events:
                    consume(events)
                    events.clear()

        self._charge = charge
        self._flush = flush
        self._flush_events = flush_events

    def _get_invoke(self, name: str) -> Callable[[list, int], Any]:
        inv = self._compiled.get(name)
        if inv is None:
            inv = _FunctionCompiler(self, self._functions[name]).compile_invoke()
            self._compiled[name] = inv
        return inv

    def run(self, entry: str, args: Sequence[Any] = ()) -> RunResult:
        """Call *entry* with Python *args*; see :meth:`Interpreter.run`."""
        if entry not in self._functions:
            raise InterpreterError(f"no function named {entry!r}")
        func = self._functions[entry]
        if len(args) != len(func.params):
            raise InterpreterError(
                f"{entry}() expects {len(func.params)} arguments, got {len(args)}"
            )
        bound: list[ScalarCell | ArrayValue | int | float] = []
        arrays: dict[str, ArrayValue] = {}
        ref_cells: dict[str, ScalarCell] = {}
        for param, arg in zip(func.params, args):
            if param.is_array:
                if isinstance(arg, ArrayValue):
                    value = arg
                else:
                    arr = np.asarray(
                        arg, dtype=np.int64 if param.type == "int" else np.float64
                    )
                    if arr.ndim != param.array_rank:
                        raise InterpreterError(
                            f"argument for {param.name!r} has rank {arr.ndim}, "
                            f"expected {param.array_rank}"
                        )
                    value = ArrayValue.from_numpy(arr, self.space, name=param.name)
                arrays[param.name] = value
                bound.append(value)
            elif param.by_ref:
                cell = ScalarCell(
                    addr=self.space.alloc(1),
                    value=int(arg) if param.type == "int" else float(arg),
                    name=param.name,
                )
                ref_cells[param.name] = cell
                bound.append(cell)
            else:
                bound.append(int(arg) if param.type == "int" else float(arg))

        invoke = self._get_invoke(entry)
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 40_000))
        try:
            value = invoke(bound, func.line)
        finally:
            sys.setrecursionlimit(old_limit)
        self._flush()
        if self.sink is not None:
            self._flush_events()
            self.sink.finish()
        return RunResult(
            value=value,
            total_cost=self._tot[0],
            arrays={name: a.to_numpy() for name, a in arrays.items()},
            scalars={name: c.value for name, c in ref_cells.items()},
            globals={
                name: (slot.to_numpy() if isinstance(slot, ArrayValue) else slot.value)
                for name, slot in self.globals.items()
            },
        )


def run_compiled(
    program: Program,
    entry: str,
    args: Sequence[Any] = (),
    sink: Sink | None = None,
    max_cost: int = 500_000_000,
) -> RunResult:
    """Convenience wrapper: build a :class:`CompiledEngine` and run *entry*."""
    return CompiledEngine(program, sink=sink, max_cost=max_cost).run(entry, args)
