"""High-level one-call API.

>>> from repro import analyze_source, analysis_report
>>> result = analyze_source(source, entry="kernel", arg_sets=[[data, 64]])
>>> print(analysis_report(result))
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.patterns.engine import AnalysisResult, analyze
from repro.patterns.framework import (
    AnalysisContext,
    AnalysisTrace,
    Detector,
    DetectorRegistry,
    Evidence,
    default_registry,
)
from repro.patterns.schema import (
    SCHEMA_VERSION,
    analysis_from_dict,
    analysis_from_json,
    analysis_to_dict,
    analysis_to_json,
)
from repro.profiling.hotspots import DEFAULT_THRESHOLD
from repro.reporting.report import analysis_report, trace_report
from repro.runtime.parallel import (
    AnalysisTimeout,
    BenchmarkOutcome,
    FailedOutcome,
    analyze_registry,
    outcome_from_dict,
    run_one,
)
from repro.service import (
    AnalysisService,
    Job,
    JobStore,
    ServiceClient,
    ServiceError,
)


def compile_source(source: str) -> Program:
    """Parse and validate MiniC *source*."""
    program = parse_program(source)
    validate_program(program)
    return program


def analyze_source(
    source: str,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    hotspot_threshold: float = DEFAULT_THRESHOLD,
    min_pairs: int = 3,
    max_cost: int = 500_000_000,
) -> AnalysisResult:
    """Compile, profile (with every argument set), and detect patterns."""
    from repro.obs.tracing import ensure_tracer

    with ensure_tracer() as tracer:
        with tracer.span("parse"):
            program = compile_source(source)
        return analyze(
            program,
            entry,
            arg_sets,
            hotspot_threshold=hotspot_threshold,
            min_pairs=min_pairs,
            max_cost=max_cost,
        )


__all__ = [
    "compile_source",
    "analyze_source",
    "analysis_report",
    "trace_report",
    "analyze_registry",
    "run_one",
    "AnalysisTimeout",
    "BenchmarkOutcome",
    "FailedOutcome",
    "outcome_from_dict",
    "AnalysisService",
    "Job",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "AnalysisContext",
    "AnalysisTrace",
    "Detector",
    "DetectorRegistry",
    "Evidence",
    "default_registry",
    "SCHEMA_VERSION",
    "analysis_to_dict",
    "analysis_from_dict",
    "analysis_to_json",
    "analysis_from_json",
]
