"""A minimal directed graph with hashable nodes and optional edge data."""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator


class DiGraph:
    """Directed graph: adjacency sets plus per-edge data dictionaries."""

    def __init__(self) -> None:
        self._succ: dict[Hashable, dict[Hashable, dict]] = {}
        self._pred: dict[Hashable, dict[Hashable, dict]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, src: Hashable, dst: Hashable, **data: Any) -> None:
        """Add edge ``src -> dst``; repeated adds merge the data dicts."""
        self.add_node(src)
        self.add_node(dst)
        existing = self._succ[src].get(dst)
        if existing is None:
            payload = dict(data)
            self._succ[src][dst] = payload
            self._pred[dst][src] = payload
        else:
            existing.update(data)

    def remove_edge(self, src: Hashable, dst: Hashable) -> None:
        del self._succ[src][dst]
        del self._pred[dst][src]

    def remove_node(self, node: Hashable) -> None:
        for dst in list(self._succ[node]):
            self.remove_edge(node, dst)
        for src in list(self._pred[node]):
            self.remove_edge(src, node)
        del self._succ[node]
        del self._pred[node]

    # -- queries -------------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> list[Hashable]:
        return list(self._succ)

    def edges(self) -> Iterator[tuple[Hashable, Hashable, dict]]:
        for src, targets in self._succ.items():
            for dst, data in targets.items():
                yield src, dst, data

    def num_edges(self) -> int:
        return sum(len(t) for t in self._succ.values())

    def successors(self, node: Hashable) -> list[Hashable]:
        return list(self._succ[node])

    def predecessors(self, node: Hashable) -> list[Hashable]:
        return list(self._pred[node])

    def out_degree(self, node: Hashable) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Hashable) -> int:
        return len(self._pred[node])

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        return src in self._succ and dst in self._succ[src]

    def edge_data(self, src: Hashable, dst: Hashable) -> dict:
        return self._succ[src][dst]

    # -- derived graphs ------------------------------------------------------

    def subgraph(self, nodes: Iterable[Hashable]) -> "DiGraph":
        keep = set(nodes)
        out = DiGraph()
        for node in keep:
            if node in self:
                out.add_node(node)
        for src, dst, data in self.edges():
            if src in keep and dst in keep:
                out.add_edge(src, dst, **data)
        return out

    def reversed(self) -> "DiGraph":
        out = DiGraph()
        for node in self.nodes():
            out.add_node(node)
        for src, dst, data in self.edges():
            out.add_edge(dst, src, **data)
        return out

    def copy(self) -> "DiGraph":
        out = DiGraph()
        for node in self.nodes():
            out.add_node(node)
        for src, dst, data in self.edges():
            out.add_edge(src, dst, **dict(data))
        return out
