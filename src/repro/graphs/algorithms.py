"""Graph algorithms used by the pattern detectors.

* ``has_path`` — the barrier-parallelism test of Section III-B ("we check
  for a directed path from one barrier to the other").
* ``critical_path`` — the weighted longest path used for the estimated
  speedup metric (Table V).
* ``strongly_connected_components`` / ``topological_sort`` — support for
  cycle handling when dynamic dependences induce back edges.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.graphs.digraph import DiGraph


def reachable_from(graph: DiGraph, start: Hashable) -> set[Hashable]:
    """All nodes reachable from *start* (including *start*)."""
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def has_path(graph: DiGraph, src: Hashable, dst: Hashable) -> bool:
    """True when a directed path ``src -> ... -> dst`` exists."""
    if src not in graph or dst not in graph:
        return False
    if src == dst:
        return True
    return dst in reachable_from(graph, src)


def topological_sort(graph: DiGraph) -> list[Hashable]:
    """Kahn's algorithm; raises ``ValueError`` on cycles."""
    in_deg = {node: graph.in_degree(node) for node in graph.nodes()}
    ready = [node for node, deg in in_deg.items() if deg == 0]
    order: list[Hashable] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in graph.successors(node):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph):
        raise ValueError("graph contains a cycle")
    return order


def strongly_connected_components(graph: DiGraph) -> list[set[Hashable]]:
    """Tarjan's SCC algorithm (iterative), components in reverse topo order."""
    index: dict[Hashable, int] = {}
    low: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    counter = [0]
    components: list[set[Hashable]] = []

    for root in graph.nodes():
        if root in index:
            continue
        work: list[tuple[Hashable, int]] = [(root, 0)]
        while work:
            node, child_i = work.pop()
            if child_i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            succs = graph.successors(node)
            advanced = False
            for i in range(child_i, len(succs)):
                succ = succs[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            if low[node] == index[node]:
                comp: set[Hashable] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.add(member)
                    if member == node:
                        break
                components.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def condensation(graph: DiGraph) -> tuple[DiGraph, dict[Hashable, int]]:
    """Collapse SCCs into super-nodes; returns (DAG, node -> component id)."""
    comps = strongly_connected_components(graph)
    comp_of: dict[Hashable, int] = {}
    for cid, comp in enumerate(comps):
        for node in comp:
            comp_of[node] = cid
    dag = DiGraph()
    for cid in range(len(comps)):
        dag.add_node(cid)
    for src, dst, _ in graph.edges():
        a, b = comp_of[src], comp_of[dst]
        if a != b:
            dag.add_edge(a, b)
    return dag, comp_of


def critical_path(
    graph: DiGraph, weight: Callable[[Hashable], float]
) -> tuple[float, list[Hashable]]:
    """Heaviest node-weighted path through a DAG.

    Returns ``(total weight, path)``.  If the graph has cycles (possible
    when dynamic dependences flow both ways between two CUs), each cycle is
    collapsed to a super-node whose weight is the sum of its members — the
    members must execute sequentially anyway.
    """
    if len(graph) == 0:
        return 0.0, []
    try:
        order = topological_sort(graph)
        node_weight = weight
        succ = graph.successors
        members: dict[Hashable, list[Hashable]] = {n: [n] for n in graph.nodes()}
    except ValueError:
        dag, comp_of = condensation(graph)
        groups: dict[int, list[Hashable]] = {}
        for node, cid in comp_of.items():
            groups.setdefault(cid, []).append(node)
        order = topological_sort(dag)
        node_weight = lambda cid: sum(weight(n) for n in groups[cid])  # noqa: E731
        succ = dag.successors
        members = {cid: groups[cid] for cid in groups}

    best: dict[Hashable, float] = {}
    back: dict[Hashable, Hashable | None] = {}
    for node in order:
        if node not in best:
            best[node] = node_weight(node)
            back[node] = None
        for nxt in succ(node):
            cand = best[node] + node_weight(nxt)
            if cand > best.get(nxt, float("-inf")):
                best[nxt] = cand
                back[nxt] = node
    end = max(best, key=lambda n: best[n])
    path: list[Hashable] = []
    cursor: Hashable | None = end
    while cursor is not None:
        path.extend(reversed(members[cursor]))
        cursor = back[cursor]
    path.reverse()
    return best[end], path


def longest_path_length(graph: DiGraph) -> int:
    """Length (in nodes) of the longest path, unit weights."""
    total, path = critical_path(graph, lambda _n: 1.0)
    return len(path)
