"""Small directed-graph toolkit.

The CU graphs and task graphs in this library are tiny (tens of nodes), so a
dependency-free adjacency-set digraph with exactly the operations the
pattern detectors need (reachability, topological sort, longest path) is
both faster and easier to audit than a general graph library.  The test
suite property-checks these routines against ``networkx``.
"""

from repro.graphs.digraph import DiGraph
from repro.graphs.algorithms import (
    critical_path,
    has_path,
    longest_path_length,
    reachable_from,
    strongly_connected_components,
    topological_sort,
)

__all__ = [
    "DiGraph",
    "critical_path",
    "has_path",
    "longest_path_length",
    "reachable_from",
    "strongly_connected_components",
    "topological_sort",
]
