"""CU detection: forming read-compute-write units from a region's AST.

The procedure mirrors Figure 1 of the paper:

1. The region's body is flattened into *units*.  Loops are atomic units;
   statements containing user-function calls are atomic units; ``if``
   statements without calls or loops anywhere inside are atomic units;
   other ``if`` statements are transparent (their condition becomes a
   *guard* unit and their branches are flattened).
2. Units are classified as **anchors** (loops, calls, value-returning
   statements, and writes to *state* — anything that is not a scalar
   declared inside the region) or **plain** temp computations.
3. Consecutive plain units merge into groups.  A group consumed by exactly
   one anchor is absorbed into that anchor's CU (the "compute" part of
   read-compute-write); a group consumed by several anchors becomes its own
   CU (shared prologue, like ``cilksort``'s quarter computation — CU_0 in
   Figure 3); guards with no writes merge into the next plain group.
4. Finally, anchors that read-modify-write the *same* state variable are
   merged, reproducing Figure 1's CU_x = {read x, compute, write x}.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cu.model import CU
from repro.errors import AnalysisError
from repro.lang.analysis import (
    stmt_calls,
    stmt_declares,
    stmt_lines,
    stmt_reads,
    stmt_writes,
)
from repro.lang.ast_nodes import (
    Break,
    Continue,
    For,
    If,
    Program,
    Return,
    Stmt,
    VarDecl,
    While,
    walk_stmts,
)


def region_body(program: Program, region: int) -> list[Stmt]:
    """The statement list owned by a static *region* (function or loop)."""
    reg = program.regions.get(region)
    if reg is None:
        raise AnalysisError(f"unknown region {region}")
    node = reg.node
    return list(node.body)


@dataclass
class _Unit:
    kind: str  # 'loop' | 'call' | 'return' | 'plain' | 'guard'
    stmts: list[Stmt] = field(default_factory=list)
    lines: set[int] = field(default_factory=set)
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    declares: set[str] = field(default_factory=set)
    callees: list[str] = field(default_factory=list)
    early_exit: bool = False


def _contains_call_or_loop(stmt: Stmt, user_funcs: set[str]) -> bool:
    for s in walk_stmts([stmt]):
        if isinstance(s, (For, While)):
            return True
        for call in stmt_calls(s, recursive=False):
            if call.name in user_funcs:
                return True
    return False


def _contains_return(stmt: Stmt) -> bool:
    return any(isinstance(s, Return) for s in walk_stmts([stmt]))


def _unit_for_stmt(stmt: Stmt, user_funcs: set[str]) -> _Unit:
    calls = [c.name for c in stmt_calls(stmt) if c.name in user_funcs]
    if isinstance(stmt, (For, While)):
        kind = "loop"
    elif calls:
        kind = "call"
    elif isinstance(stmt, Return) or (isinstance(stmt, If) and _contains_return(stmt)):
        kind = "return"
    else:
        kind = "plain"
    return _Unit(
        kind=kind,
        stmts=[stmt],
        lines=stmt_lines(stmt),
        reads=stmt_reads(stmt),
        writes=stmt_writes(stmt),
        declares=stmt_declares(stmt),
        callees=calls,
        early_exit=isinstance(stmt, If) and _contains_return(stmt),
    )


def _flatten_units(body: list[Stmt], user_funcs: set[str]) -> list[_Unit]:
    units: list[_Unit] = []
    for stmt in body:
        if isinstance(stmt, If) and _contains_call_or_loop(stmt, user_funcs):
            # transparent if: guard + flattened branches
            guard = _Unit(kind="guard", stmts=[stmt], lines={stmt.line})
            from repro.lang.analysis import expr_reads

            guard.reads = expr_reads(stmt.cond)
            units.append(guard)
            units.extend(_flatten_units(stmt.then_body, user_funcs))
            units.extend(_flatten_units(stmt.else_body, user_funcs))
            continue
        if isinstance(stmt, (Break, Continue)):
            continue
        if isinstance(stmt, Return) and stmt.value is None:
            continue
        if isinstance(stmt, VarDecl) and stmt.init is None and not stmt.dims:
            # bare scalar declaration: pure bookkeeping, no unit
            continue
        units.append(_unit_for_stmt(stmt, user_funcs))
    return units


def detect_cus(program: Program, region: int) -> list[CU]:
    """Form the CUs of *region* (Figure 1's procedure, see module docs)."""
    body = region_body(program, region)
    user_funcs = {f.name for f in program.functions}
    units = _flatten_units(body, user_funcs)
    if not units:
        return []

    # State variables: everything not declared at this region's level.
    # (Bare declarations produce no unit but still introduce temporaries.)
    declared_here: set[str] = set()

    def collect_decls(stmts: list[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, VarDecl):
                declared_here.add(stmt.name)
            elif isinstance(stmt, If):
                collect_decls(stmt.then_body)
                collect_decls(stmt.else_body)

    collect_decls(body)
    for unit in units:
        declared_here.update(unit.declares)

    def writes_state(unit: _Unit) -> bool:
        return any(v not in declared_here for v in unit.writes)

    def is_anchor(unit: _Unit) -> bool:
        if unit.kind in ("loop", "call"):
            return True
        if unit.kind == "return":
            return bool(unit.reads) or unit.early_exit
        if unit.kind == "guard":
            return False
        return writes_state(unit)

    # -- step 3a: merge guards into the next plain group -------------------
    anchors: list[_Unit] = []
    plain_groups: list[_Unit] = []  # merged plain groups, in order
    order: list[tuple[str, int]] = []  # ('anchor'|'group', index) in serial order

    pending_guards: list[_Unit] = []
    current_group: _Unit | None = None

    def close_group() -> None:
        nonlocal current_group
        if current_group is not None:
            order.append(("group", len(plain_groups)))
            plain_groups.append(current_group)
            current_group = None

    def merge_into(dst: _Unit, src: _Unit) -> None:
        dst.stmts.extend(src.stmts)
        dst.lines.update(src.lines)
        dst.reads.update(src.reads)
        dst.writes.update(src.writes)
        dst.declares.update(src.declares)
        dst.callees.extend(src.callees)
        dst.early_exit = dst.early_exit or src.early_exit

    for unit in units:
        if is_anchor(unit):
            close_group()
            for guard in pending_guards:
                # no plain group followed the guard before this anchor and
                # none will absorb it later if we keep holding it; a guard
                # directly followed by an anchor folds into that anchor
                merge_into(unit, guard)
            pending_guards = []
            order.append(("anchor", len(anchors)))
            anchors.append(unit)
        elif unit.kind == "guard":
            pending_guards.append(unit)
        else:
            if current_group is None:
                current_group = _Unit(kind="plain")
            for guard in pending_guards:
                merge_into(current_group, guard)
            pending_guards = []
            merge_into(current_group, unit)
    close_group()
    for guard in pending_guards:  # trailing guards with nothing after them
        if anchors:
            merge_into(anchors[-1], guard)

    if not anchors:
        # A region of pure temp computation: everything is one CU.
        cu = CU(cu_id=0, region=region, kind="plain")
        for group in plain_groups:
            cu.stmts.extend(group.stmts)
            cu.lines.update(group.lines)
            cu.reads.update(group.reads)
            cu.writes.update(group.writes)
        return [cu] if cu.stmts else []

    # -- step 3b: resolve plain groups to consumers ------------------------
    # Track, per variable, which order-entry last wrote it.
    consumers: dict[int, list[int]] = {gi: [] for gi in range(len(plain_groups))}
    last_writer: dict[str, tuple[str, int]] = {}
    for entry_kind, idx in order:
        unit = anchors[idx] if entry_kind == "anchor" else plain_groups[idx]
        if entry_kind == "anchor":
            for var in unit.reads:
                writer = last_writer.get(var)
                if writer is not None and writer[0] == "group":
                    if idx not in consumers[writer[1]]:
                        consumers[writer[1]].append(idx)
        for var in unit.writes:
            last_writer[var] = (entry_kind, idx)

    standalone_groups: list[int] = []
    for gi, group in enumerate(plain_groups):
        if len(consumers[gi]) == 1:
            merge_into(anchors[consumers[gi][0]], group)
        else:
            standalone_groups.append(gi)

    # -- step 4: merge read-modify-write chains on the same state var ------
    # Work on the final unit list in serial (first-line) order.
    final_units: list[_Unit] = [plain_groups[gi] for gi in standalone_groups] + anchors
    final_units.sort(key=lambda u: min(u.lines) if u.lines else 0)

    merged_away: set[int] = set()
    for i, unit in enumerate(final_units):
        if i in merged_away or unit.kind != "plain":
            continue
        state_writes = {v for v in unit.writes if v not in declared_here}
        if not state_writes:
            continue
        for j in range(i + 1, len(final_units)):
            if j in merged_away:
                continue
            later = final_units[j]
            if later.kind not in ("plain",):
                continue
            shared = state_writes & {
                v for v in later.writes if v not in declared_here
            }
            if shared and (later.reads & shared):
                merge_into(later, unit)
                merged_away.add(i)
                break
            if later.writes & state_writes:
                break  # someone else redefined the state var: chain broken

    result_units = [u for i, u in enumerate(final_units) if i not in merged_away]
    result_units.sort(key=lambda u: min(u.lines) if u.lines else 0)

    cus: list[CU] = []
    for i, unit in enumerate(result_units):
        cus.append(
            CU(
                cu_id=i,
                region=region,
                kind=unit.kind if unit.kind != "guard" else "plain",
                stmts=unit.stmts,
                lines=unit.lines,
                reads=unit.reads,
                writes=unit.writes,
                callees=unit.callees,
                early_exit=unit.early_exit,
            )
        )
    return cus
