"""CU data model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import Stmt


@dataclass
class CU:
    """One computational unit of a control region.

    ``lines`` covers every source line of the CU's statements (including
    nested bodies and expressions), which is how dynamic dependences and
    instruction costs are mapped back onto CUs.  ``kind`` is

    * ``'call'``   — the unit's anchor contains a user-function call,
    * ``'loop'``   — the unit is a whole loop nest,
    * ``'return'`` — the unit produces the region's result or exits early,
    * ``'plain'``  — ordinary read-compute-write on state variables.
    """

    cu_id: int
    region: int
    kind: str
    stmts: list[Stmt] = field(default_factory=list)
    lines: set[int] = field(default_factory=set)
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    callees: list[str] = field(default_factory=list)
    #: True when the CU contains an early ``return`` guarding later CUs.
    early_exit: bool = False

    @property
    def label(self) -> str:
        return f"CU_{self.cu_id}"

    @property
    def first_line(self) -> int:
        return min(self.lines) if self.lines else 0

    def describe(self) -> str:
        lines = ",".join(str(x) for x in sorted(self.lines))
        return (
            f"{self.label}[{self.kind}] lines={{{lines}}} "
            f"reads={sorted(self.reads)} writes={sorted(self.writes)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CU({self.cu_id}, {self.kind}, lines={sorted(self.lines)})"
