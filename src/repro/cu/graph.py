"""CU graph construction.

Vertices are the CUs of a region; edges are the dynamic data dependences the
profiler recorded between the region-level *sites* of those CUs (Section II:
"Data dependences are mapped onto a pair of CUs").  An edge ``A -> B`` means
*B depends on A* — exactly the direction Algorithm 1's ``N.dependents``
traverses.

Loop-carried dependences of the region itself are excluded: the CU graph
describes one activation (one iteration for loop regions); cross-iteration
constraints are the do-all/pipeline detectors' concern.

Static control-dependence edges are added from early-exit guard CUs to every
later CU.  This supplies the fork structure for purely control-dependent
regions like ``fib`` (Listing 4) without perturbing data-forked regions like
``cilksort`` (Figure 3).
"""

from __future__ import annotations

from repro.cu.model import CU
from repro.graphs.digraph import DiGraph
from repro.profiling.model import RAW, Profile


def build_cu_graph(
    cus: list[CU],
    profile: Profile,
    region: int,
    include_control: bool = True,
    dep_kinds: tuple[str, ...] = (RAW,),
) -> DiGraph:
    """Build the CU graph of *region* from *profile*'s dependences.

    Nodes are ``cu_id`` ints; edge data holds ``vars`` (the variables whose
    dependences induced the edge) and ``kind`` (``'data'``/``'control'``).
    """
    graph = DiGraph()
    line_to_cu: dict[int, int] = {}
    for cu in cus:
        graph.add_node(cu.cu_id)
        for line in cu.lines:
            line_to_cu.setdefault(line, cu.cu_id)

    for dep, _count in profile.deps.items():
        if dep.region != region or dep.kind not in dep_kinds:
            continue
        if dep.carrier == region:
            continue  # cross-iteration constraint, not an intra-activation edge
        src_cu = line_to_cu.get(dep.src_site)
        dst_cu = line_to_cu.get(dep.dst_site)
        if src_cu is None or dst_cu is None or src_cu == dst_cu:
            continue
        if graph.has_edge(src_cu, dst_cu):
            graph.edge_data(src_cu, dst_cu).setdefault("vars", set()).add(dep.var)
        else:
            graph.add_edge(src_cu, dst_cu, kind="data", vars={dep.var})

    if include_control:
        ordered = sorted(cus, key=lambda c: c.first_line)
        for i, cu in enumerate(ordered):
            if not cu.early_exit:
                continue
            for later in ordered[i + 1 :]:
                if not graph.has_edge(cu.cu_id, later.cu_id):
                    graph.add_edge(cu.cu_id, later.cu_id, kind="control", vars=set())
    return graph


def cu_weight(cu: CU, profile: Profile) -> int:
    """Dynamic instruction count attributed to *cu* (inclusive of callees).

    The profiler accounts costs per ``(region, site line)``; a CU's weight is
    the sum over its lines.  Nested work (called functions, inner loops) was
    folded into the call-site/loop-statement line on activation exit, so the
    weight is inclusive.
    """
    site_costs = profile.site_costs
    region = cu.region
    return sum(site_costs.get((region, line), 0) for line in cu.lines)
