"""Computational Units (CUs) and CU graphs.

CUs follow the *read-compute-write* pattern (Section II, Figure 1): program
state is read, a new state is computed through local temporaries, and the
result is written back.  :func:`detect_cus` forms the CUs of a control
region from the static AST; :func:`build_cu_graph` connects them with the
dynamic dependences recorded by the profiler, yielding the CU graph that the
task-parallelism detector (Algorithm 1) consumes.
"""

from repro.cu.model import CU
from repro.cu.detect import detect_cus, region_body
from repro.cu.graph import build_cu_graph, cu_weight

__all__ = ["CU", "detect_cus", "region_body", "build_cu_graph", "cu_weight"]
