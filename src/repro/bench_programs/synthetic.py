"""Synthetic programs from the paper's text.

* ``sum_local`` / ``sum_module`` — Listings 8 and 9, the Table VI reduction
  comparison against static tools.
* ``figure1`` — the CU-construction example of Figure 1.
* ``figure2`` — a nested control-region example for the PET of Figure 2.
* coefficient demos — loop pairs engineered to produce each row of
  Table II (a = 1, a < 1, a > 1; b = 0, b < 0, b > 0).
"""

from __future__ import annotations

import numpy as np

from repro.lang.parser import parse_program
from repro.lang.validate import validate_program

SUM_LOCAL_SRC = """\
int sum_local(int arr[], int size) {
    int sum = 0;
    for (int i = 0; i < size; i++) {
        sum += arr[i];
    }
    return sum;
}
"""

SUM_MODULE_SRC = """\
int accumulate(int &sum, int val) {
    int x = val * val + val / 2 + 3;
    sum += x;
    return x;
}

int consume(int x) {
    return x % 7;
}

int sum_module(int arr[], int size) {
    int sum = 0;
    for (int i = 0; i < size; i++) {
        int x = accumulate(sum, arr[i]);
        int y = consume(x);
        arr[i] = arr[i] + y - y;
    }
    return sum;
}
"""

FIGURE1_SRC = """\
void figure1(float &x, float &y) {
    x = x + 0.5;
    y = y + 1.5;
    float a = x * 2.0;
    float b = a + 1.0;
    x = b * 3.0;
    float c = y + 5.0;
    float d = c * c;
    y = d - 1.0;
}
"""

FIGURE2_SRC = """\
float helper(float A[], int n) {
    float s = 0.0;
    for (int i = 0; i < n; i++) {
        s += A[i];
    }
    return s;
}

float figure2(float A[], float B[], int n) {
    float total = 0.0;
    for (int t = 0; t < 3; t++) {
        for (int i = 0; i < n; i++) {
            B[i] = A[i] * 2.0 + t;
        }
        total = total + helper(B, n);
    }
    return total;
}
"""

#: loop pairs engineered for each Table II coefficient row.
COEFFICIENT_DEMOS: dict[str, str] = {
    # a = 1, b = 0 — perfect pipeline
    "a1_b0": """\
void demo(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 2.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j] + 1.0;
    }
}
""",
    # a < 1 — one iteration of y needs 1/a iterations of x
    "a_lt_1": """\
void demo(float A[], float B[], int n) {
    for (int i = 0; i < 4 * n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[4 * j + 3] + 1.0;
    }
}
""",
    # a > 1 — a iterations of y unlock per iteration of x
    "a_gt_1": """\
void demo(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < 4 * n; j++) {
        B[j] = A[j / 4] + 1.0;
    }
}
""",
    # b < 0 — no iteration of y depends on the first |b| iterations of x
    "b_neg": """\
void demo(float A[], float B[], int n) {
    for (int i = 0; i < n + 5; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n; j++) {
        B[j] = A[j + 5] + 1.0;
    }
}
""",
    # b > 0 — the first b iterations of y depend on nothing
    "b_pos": """\
void demo(float A[], float B[], int n) {
    for (int i = 0; i < n; i++) {
        A[i] = i * 1.0;
    }
    for (int j = 0; j < n + 5; j++) {
        if (j >= 5) {
            B[j] = A[j - 5] + 1.0;
        }
        if (j < 5) {
            B[j] = 0.0;
        }
    }
}
""",
}


def parsed_program(source: str):
    program = parse_program(source)
    validate_program(program)
    return program


def sum_local_args() -> list[list]:
    return [[np.arange(1, 41, dtype=np.int64), 40]]


def sum_module_args() -> list[list]:
    return [[np.arange(1, 41, dtype=np.int64), 40]]
