"""Workload generators: structured inputs for the benchmark programs.

Dynamic analysis is input-sensitive (Section II), and the paper mitigates
this by profiling "different representative inputs whenever possible and
merging the outputs".  This module provides the input side of that story:
parameterized generators producing differently-shaped workloads
(uniform/clustered/sorted/adversarial) for the registry benchmarks, used
by the input-sensitivity ablation and available to library users who want
to stress a detection with their own distributions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

DISTRIBUTIONS = ("uniform", "clustered", "sorted", "reversed", "constant")


def vector(
    n: int, distribution: str = "uniform", seed: int = 0, lo: float = 0.0, hi: float = 1.0
) -> np.ndarray:
    """A 1-D float workload with the requested shape."""
    rng = np.random.default_rng(seed)
    span = hi - lo
    if distribution == "uniform":
        return lo + span * rng.random(n)
    if distribution == "clustered":
        centers = lo + span * rng.random(max(1, n // 16))
        picks = rng.integers(0, len(centers), size=n)
        return np.clip(centers[picks] + 0.01 * span * rng.standard_normal(n), lo, hi)
    if distribution == "sorted":
        return np.sort(lo + span * rng.random(n))
    if distribution == "reversed":
        return np.sort(lo + span * rng.random(n))[::-1].copy()
    if distribution == "constant":
        return np.full(n, lo + span / 2)
    raise ValueError(f"unknown distribution {distribution!r}")


def matrix(
    rows: int, cols: int, distribution: str = "uniform", seed: int = 0
) -> np.ndarray:
    """A 2-D float workload; rows share the 1-D generator's shapes."""
    if distribution == "uniform":
        return np.random.default_rng(seed).random((rows, cols))
    return np.stack(
        [vector(cols, distribution, seed + r) for r in range(rows)]
    )


def points(
    n: int, dim: int, distribution: str = "clustered", seed: int = 0, k: int = 4
) -> np.ndarray:
    """Point clouds for the clustering benchmarks.

    ``clustered`` draws from *k* Gaussian blobs — the workload kmeans was
    built for; ``uniform`` is its adversarial counterpart (no structure to
    find, all distances comparable).
    """
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        return rng.random((n, dim))
    if distribution == "clustered":
        centers = rng.random((k, dim))
        assign = rng.integers(0, k, size=n)
        return np.clip(
            centers[assign] + 0.05 * rng.standard_normal((n, dim)), 0.0, 1.0
        )
    raise ValueError(f"unknown distribution {distribution!r}")


#: benchmark name -> (distribution -> arg-set factory).  Only benchmarks
#: whose behaviour plausibly depends on input *shape* are parameterized.
_SORT_N = 128


def _sort_args(distribution: str, seed: int = 5) -> list:
    data = vector(_SORT_N, distribution, seed)
    return [data, np.zeros(_SORT_N), 0, _SORT_N]


def _kmeans_args(distribution: str, seed: int = 6) -> list:
    n, kmax, dim = 48, 8, 4
    pts = points(n, dim, distribution, seed)
    rng = np.random.default_rng(seed + 1)
    return [pts, rng.random((kmax + 1, dim)), np.zeros(n, dtype=np.int64), n, kmax, dim]


def _nqueens_args(_distribution: str, _seed: int = 0) -> list:
    return [np.zeros(7, dtype=np.int64), 0, 7]


def _gesummv_args(distribution: str, seed: int = 8) -> list:
    n = 44
    return [
        1.5,
        1.2,
        matrix(n, n, distribution, seed),
        matrix(n, n, distribution, seed + 1),
        vector(n, distribution, seed + 2),
        np.zeros(n),
        n,
    ]


WORKLOADS: dict[str, Callable[[str], list]] = {
    "sort": _sort_args,
    "kmeans": _kmeans_args,
    "gesummv": _gesummv_args,
}


def arg_sets_for(name: str, distributions: tuple[str, ...]) -> list[list]:
    """Argument sets for *name*, one per distribution."""
    factory = WORKLOADS[name]
    return [factory(d) for d in distributions]


def scale_arg_sets(arg_sets: list[list], scale: float) -> list[list]:
    """Deterministically rescale benchmark argument sets by *scale*.

    The campaign harness's input-scale axis: every registry benchmark
    builds its arguments as ndarrays plus integer extents naming their
    dimensions (``[A(n,n), b(n), x(n), n]``).  This helper grows or
    shrinks those problems without touching the generators:

    * every ndarray dimension ``d`` maps to ``max(1, round(d * scale))``;
      the scaled array is ``np.resize`` of the original (tile/truncate),
      so content is a pure function of the original arg set — no RNG;
    * every integer scalar **equal to some array dimension in the same
      arg set** maps through the same dimension mapping (that is what
      keeps ``n`` arguments consistent with their arrays);
    * floats, booleans, and unrelated ints pass through unchanged.

    ``scale == 1.0`` returns *arg_sets* unchanged (identity — the default
    campaign cell stays byte-identical to the registry's own inputs).
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale!r}")
    if scale == 1.0:
        return arg_sets
    scaled_sets = []
    for arg_set in arg_sets:
        dims = {
            int(d)
            for arg in arg_set
            if isinstance(arg, np.ndarray)
            for d in arg.shape
        }
        dim_map = {d: max(1, int(round(d * scale))) for d in dims}
        scaled = []
        for arg in arg_set:
            if isinstance(arg, np.ndarray):
                new_shape = tuple(dim_map[int(d)] for d in arg.shape)
                scaled.append(np.resize(arg, new_shape))
            elif (
                isinstance(arg, (int, np.integer))
                and not isinstance(arg, bool)
                and int(arg) in dim_map
            ):
                scaled.append(type(arg)(dim_map[int(arg)]))
            else:
                scaled.append(arg)
        scaled_sets.append(scaled)
    return scaled_sets
