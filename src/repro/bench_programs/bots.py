"""BOTS benchmarks (Table III rows: fib, sort, strassen, nqueens).

All four are recursive task-parallel programs; `sort` reproduces the
cilksort/cilkmerge structure whose CU graph is the paper's Figure 3.
"""

from __future__ import annotations

import numpy as np

from repro.bench_programs.registry import BenchmarkSpec, PaperRow, register

# ---------------------------------------------------------------------------
# fib — Listing 4
# ---------------------------------------------------------------------------

_FIB_SRC = """\
int fib(int n) {
    if (n < 2) {
        return n;
    }
    int x = fib(n - 1);
    int y = fib(n - 2);
    return x + y;
}
"""

register(
    BenchmarkSpec(
        name="fib",
        suite="BOTS",
        source=_FIB_SRC,
        entry="fib",
        make_arg_sets=lambda: [[18]],
        paper=PaperRow(loc=32, hotspot_pct=100.00, speedup=13.25, threads=32,
                       pattern="Task parallelism"),
        notes="Two independent recursive calls (workers) joined by the "
        "return (barrier); the guard is the fork — Listing 4's annotations.",
    )
)

# ---------------------------------------------------------------------------
# sort — cilksort (Figure 3)
# ---------------------------------------------------------------------------

_SORT_SRC = """\
void seqsort(float A[], int lo, int n) {
    for (int i = lo + 1; i < lo + n; i++) {
        float key = A[i];
        int j = i - 1;
        while (j >= lo && A[j] > key) {
            A[j + 1] = A[j];
            j = j - 1;
        }
        A[j + 1] = key;
    }
}

void seqmerge(float src[], float dst[], int lo1, int n1, int lo2, int n2, int dest) {
    int i = lo1;
    int j = lo2;
    int k = dest;
    while (i < lo1 + n1 && j < lo2 + n2) {
        if (src[i] <= src[j]) {
            dst[k] = src[i];
            i++;
        } else {
            dst[k] = src[j];
            j++;
        }
        k++;
    }
    while (i < lo1 + n1) {
        dst[k] = src[i];
        i++;
        k++;
    }
    while (j < lo2 + n2) {
        dst[k] = src[j];
        j++;
        k++;
    }
}

int binsearch(float A[], int lo, int hi, float v) {
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (A[mid] < v) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

void cilkmerge(float src[], float dst[], int lo1, int n1, int lo2, int n2, int dest) {
    if (n1 + n2 <= 8) {
        seqmerge(src, dst, lo1, n1, lo2, n2, dest);
        return;
    }
    if (n1 < n2) {
        cilkmerge(src, dst, lo2, n2, lo1, n1, dest);
        return;
    }
    int d1 = n1 / 2;
    int mid = lo1 + d1;
    float pivot = src[mid];
    int pos2 = binsearch(src, lo2, lo2 + n2, pivot);
    int d2 = pos2 - lo2;
    dst[dest + d1 + d2] = pivot;
    cilkmerge(src, dst, lo1, d1, lo2, d2, dest);
    cilkmerge(src, dst, mid + 1, n1 - d1 - 1, pos2, n2 - d2, dest + d1 + d2 + 1);
}

void cilksort(float A[], float T[], int lo, int n) {
    if (n <= 8) {
        seqsort(A, lo, n);
        return;
    }
    int q = n / 4;
    cilksort(A, T, lo, q);
    cilksort(A, T, lo + q, q);
    cilksort(A, T, lo + 2 * q, q);
    cilksort(A, T, lo + 3 * q, n - 3 * q);
    cilkmerge(A, T, lo, q, lo + q, q, lo);
    cilkmerge(A, T, lo + 2 * q, q, lo + 3 * q, n - 3 * q, lo + 2 * q);
    cilkmerge(T, A, lo, 2 * q, lo + 2 * q, n - 2 * q, lo);
}
"""


def _sort_args() -> list[list]:
    rng = np.random.default_rng(41)
    n = 128
    return [[rng.random(n), np.zeros(n), 0, n]]


register(
    BenchmarkSpec(
        name="sort",
        suite="BOTS",
        source=_SORT_SRC,
        entry="cilksort",
        make_arg_sets=_sort_args,
        paper=PaperRow(loc=305, hotspot_pct=94.89, speedup=3.67, threads=32,
                       pattern="Task parallelism"),
        notes="Figure 3's CU graph: the quarter computation forks four "
        "recursive sorts; two merges are barriers that run in parallel; the "
        "final merge waits on both.",
    )
)

# ---------------------------------------------------------------------------
# strassen — seven independent recursive multiplications
# ---------------------------------------------------------------------------

_STRASSEN_SRC = """\
void base_mm(float A[][], float B[][], float C[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float acc = 0.0;
            for (int k = 0; k < n; k++) {
                acc += A[i][k] * B[k][j];
            }
            C[i][j] = acc;
        }
    }
}

void strassen(float A[][], float B[][], float C[][], int n) {
    if (n <= 4) {
        base_mm(A, B, C, n);
        return;
    }
    int h = n / 2;
    float TA1[h][h];
    float TB1[h][h];
    float TA2[h][h];
    float TB3[h][h];
    float TB4[h][h];
    float TA5[h][h];
    float TA6[h][h];
    float TB6[h][h];
    float TA7[h][h];
    float TB7[h][h];
    float A11[h][h];
    float A22[h][h];
    float B11[h][h];
    float B22[h][h];
    float M1[h][h];
    float M2[h][h];
    float M3[h][h];
    float M4[h][h];
    float M5[h][h];
    float M6[h][h];
    float M7[h][h];
    for (int i = 0; i < h; i++) {
        for (int j = 0; j < h; j++) {
            A11[i][j] = A[i][j];
            A22[i][j] = A[i + h][j + h];
            B11[i][j] = B[i][j];
            B22[i][j] = B[i + h][j + h];
            TA1[i][j] = A[i][j] + A[i + h][j + h];
            TB1[i][j] = B[i][j] + B[i + h][j + h];
            TA2[i][j] = A[i + h][j] + A[i + h][j + h];
            TB3[i][j] = B[i][j + h] - B[i + h][j + h];
            TB4[i][j] = B[i + h][j] - B[i][j];
            TA5[i][j] = A[i][j] + A[i][j + h];
            TA6[i][j] = A[i + h][j] - A[i][j];
            TB6[i][j] = B[i][j] + B[i][j + h];
            TA7[i][j] = A[i][j + h] - A[i + h][j + h];
            TB7[i][j] = B[i + h][j] + B[i + h][j + h];
        }
    }
    strassen(TA1, TB1, M1, h);
    strassen(TA2, B11, M2, h);
    strassen(A11, TB3, M3, h);
    strassen(A22, TB4, M4, h);
    strassen(TA5, B22, M5, h);
    strassen(TA6, TB6, M6, h);
    strassen(TA7, TB7, M7, h);
    for (int i = 0; i < h; i++) {
        for (int j = 0; j < h; j++) {
            C[i][j] = M1[i][j] + M4[i][j] - M5[i][j] + M7[i][j];
            C[i][j + h] = M3[i][j] + M5[i][j];
            C[i + h][j] = M2[i][j] + M4[i][j];
            C[i + h][j + h] = M1[i][j] - M2[i][j] + M3[i][j] + M6[i][j];
        }
    }
}
"""


def _strassen_args() -> list[list]:
    rng = np.random.default_rng(43)
    n = 16
    return [[rng.random((n, n)), rng.random((n, n)), np.zeros((n, n)), n]]


register(
    BenchmarkSpec(
        name="strassen",
        suite="BOTS",
        source=_STRASSEN_SRC,
        entry="strassen",
        make_arg_sets=_strassen_args,
        paper=PaperRow(loc=399, hotspot_pct=90.27, speedup=8.93, threads=32,
                       pattern="Task parallelism"),
        notes="Seven independent recursive multiplications (workers); the "
        "combining loop that reads M1..M7 is their barrier.",
    )
)

# ---------------------------------------------------------------------------
# nqueens — reduction over the solution count
# ---------------------------------------------------------------------------

_NQUEENS_SRC = """\
int safe_place(int board[], int row, int col) {
    for (int r = 0; r < row; r++) {
        if (board[r] == col) {
            return 0;
        }
        if (board[r] - r == col - row) {
            return 0;
        }
        if (board[r] + r == col + row) {
            return 0;
        }
    }
    return 1;
}

int nqueens(int board[], int row, int n) {
    if (row == n) {
        return 1;
    }
    int count = 0;
    for (int c = 0; c < n; c++) {
        if (safe_place(board, row, c) == 1) {
            board[row] = c;
            count += nqueens(board, row + 1, n);
        }
    }
    return count;
}
"""


def _nqueens_args() -> list[list]:
    n = 7
    return [[np.zeros(n, dtype=np.int64), 0, n]]


register(
    BenchmarkSpec(
        name="nqueens",
        suite="BOTS",
        source=_NQUEENS_SRC,
        entry="nqueens",
        make_arg_sets=_nqueens_args,
        paper=PaperRow(loc=118, hotspot_pct=100.00, speedup=8.38, threads=32,
                       pattern="Reduction"),
        notes="count accumulates solutions across the column loop; the "
        "existing BOTS parallel version uses exactly this reduction.",
    )
)
