"""The paper's 17 evaluation benchmarks (plus synthetics), in MiniC.

Each benchmark is structurally faithful to the original kernel the paper
analyzed — same loop structure, dependence pattern, recursion shape, and
hotspot layout — rewritten in MiniC and sized for the instrumented
interpreter (DESIGN.md §2).  The registry records the paper's Table III row
for each program so the benchmark harness can print paper-vs-measured.
"""

from repro.bench_programs.registry import (
    BenchmarkSpec,
    PaperRow,
    all_benchmarks,
    analyze_benchmark,
    get_benchmark,
)

__all__ = [
    "BenchmarkSpec",
    "PaperRow",
    "all_benchmarks",
    "analyze_benchmark",
    "get_benchmark",
]
