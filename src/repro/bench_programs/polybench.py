"""Polybench kernels (Table III rows: ludcmp, reg_detect, correlation, 2mm,
3mm, mvt, fdtd-2d, bicg, gesummv).

Each kernel preserves the original's loop structure and dependence pattern;
array extents are sized for the instrumented interpreter.  Polybench ships
no parallel versions, so the paper implemented every detected pattern by
hand — our simulator plays that role.
"""

from __future__ import annotations

import numpy as np

from repro.bench_programs.registry import BenchmarkSpec, PaperRow, register


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# ludcmp — multi-loop pipeline, a=1 b=0 e=1 (Table IV)
# ---------------------------------------------------------------------------

_LUDCMP_SRC = """\
void kernel_ludcmp(float A[][], float b[], float x[], int n) {
    for (int i = 0; i < n; i++) {
        float w = 0.0;
        for (int j = 0; j < n; j++) {
            w += A[i][j] * A[i][j] + sqrt(fabs(A[i][j]) + 1.0);
        }
        b[i] = b[i] / (sqrt(w) + 1.0);
    }
    for (int i = 0; i < n; i++) {
        float corr = 0.0;
        for (int k = 0; k < 8; k++) {
            corr += A[i][k] * 0.01;
        }
        if (i == 0) {
            x[i] = b[i] + corr;
        }
        if (i > 0) {
            x[i] = b[i] - A[i][i - 1] * x[i - 1] + corr;
        }
    }
}
"""


def _ludcmp_args() -> list[list]:
    n = 40
    rng = _rng(7)
    return [[rng.random((n, n)), rng.random(n) + 0.5, np.zeros(n), n]]


register(
    BenchmarkSpec(
        name="ludcmp",
        suite="Polybench",
        source=_LUDCMP_SRC,
        entry="kernel_ludcmp",
        make_arg_sets=_ludcmp_args,
        paper=PaperRow(loc=135, hotspot_pct=88.64, speedup=14.06, threads=32,
                       pattern="Multi-loop pipeline"),
        hotspot_threshold=0.05,
        notes="Stage 1 do-all (row scaling), stage 2 forward substitution; "
        "perfect one-to-one dependence between the stages.",
    )
)

# ---------------------------------------------------------------------------
# reg_detect — multi-loop pipeline, a=1 b=-1 (Listing 2, Table IV)
# ---------------------------------------------------------------------------

_REG_DETECT_SRC = """\
void kernel_reg_detect(float img[][], float mean[], float path[], int n, int m) {
    for (int i = 0; i < n - 1; i++) {
        float acc = 0.0;
        for (int j = 0; j < m; j++) {
            acc += img[i][j] * img[i][j];
        }
        mean[i] = acc / m;
    }
    for (int i = 1; i < n - 1; i++) {
        float best = path[i - 1];
        for (int j = 0; j < m; j++) {
            best = best + img[i][j] * 0.001;
        }
        path[i] = best + mean[i];
    }
}
"""


def _reg_detect_args() -> list[list]:
    n, m = 48, 24
    rng = _rng(11)
    return [[rng.random((n, m)), np.zeros(n), np.zeros(n), n, m]]


register(
    BenchmarkSpec(
        name="reg_detect",
        suite="Polybench",
        source=_REG_DETECT_SRC,
        entry="kernel_reg_detect",
        make_arg_sets=_reg_detect_args,
        paper=PaperRow(loc=137, hotspot_pct=99.50, speedup=2.26, threads=16,
                       pattern="Multi-loop pipeline"),
        notes="Second loop starts at i=1, so no iteration of loop y depends "
        "on the first iteration of loop x: b = -1 exactly as the paper found.",
    )
)

# ---------------------------------------------------------------------------
# correlation — fusion of two do-all hotspot loops
# ---------------------------------------------------------------------------

_CORRELATION_SRC = """\
void kernel_correlation(float data[][], float mean[], float stddev[], int n, int m) {
    for (int j = 0; j < m; j++) {
        float s = 0.0;
        for (int i = 0; i < n; i++) {
            s += data[i][j];
        }
        mean[j] = s / n;
    }
    for (int j = 0; j < m; j++) {
        float v = 0.0;
        for (int i = 0; i < n; i++) {
            v += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
        }
        stddev[j] = sqrt(v / n) + 0.0001;
    }
}
"""


def _correlation_args() -> list[list]:
    n, m = 40, 36
    rng = _rng(13)
    return [[rng.random((n, m)), np.zeros(m), np.zeros(m), n, m]]


register(
    BenchmarkSpec(
        name="correlation",
        suite="Polybench",
        source=_CORRELATION_SRC,
        entry="kernel_correlation",
        make_arg_sets=_correlation_args,
        paper=PaperRow(loc=137, hotspot_pct=99.27, speedup=10.74, threads=32,
                       pattern="Fusion"),
        notes="mean and stddev column sweeps: both do-all over the same "
        "range with a one-to-one dependence -> fuse.",
    )
)

# ---------------------------------------------------------------------------
# 2mm — fusion of the two matrix-product nests
# ---------------------------------------------------------------------------

_2MM_SRC = """\
void kernel_2mm(float tmp[][], float A[][], float B[][], float C[][], float D[][], int ni, int nj, int nk, int nl) {
    for (int i = 0; i < ni; i++) {
        for (int j = 0; j < nj; j++) {
            float acc = 0.0;
            for (int k = 0; k < nk; k++) {
                acc += A[i][k] * B[k][j];
            }
            tmp[i][j] = acc;
        }
    }
    for (int i = 0; i < ni; i++) {
        for (int j = 0; j < nl; j++) {
            float acc = 0.0;
            for (int k = 0; k < nj; k++) {
                acc += tmp[i][k] * C[k][j];
            }
            D[i][j] = D[i][j] * 0.5 + acc;
        }
    }
}
"""


def _2mm_args() -> list[list]:
    ni = nj = nk = nl = 18
    rng = _rng(17)
    return [
        [
            np.zeros((ni, nj)),
            rng.random((ni, nk)),
            rng.random((nk, nj)),
            rng.random((nj, nl)),
            rng.random((ni, nl)),
            ni,
            nj,
            nk,
            nl,
        ]
    ]


register(
    BenchmarkSpec(
        name="2mm",
        suite="Polybench",
        source=_2MM_SRC,
        entry="kernel_2mm",
        make_arg_sets=_2mm_args,
        paper=PaperRow(loc=153, hotspot_pct=99.19, speedup=13.50, threads=32,
                       pattern="Fusion"),
        notes="tmp = A*B then D = tmp*C: outer i loops are both do-all with "
        "one-to-one dependence on tmp rows.",
    )
)

# ---------------------------------------------------------------------------
# 3mm — task parallelism + do-all (Listing 5)
# ---------------------------------------------------------------------------

_3MM_SRC = """\
void kernel_3mm(float E[][], float A[][], float B[][], float F[][], float C[][], float D[][], float G[][], int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float acc = 0.0;
            for (int k = 0; k < n; k++) {
                acc += A[i][k] * B[k][j];
            }
            E[i][j] = acc;
        }
    }
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float acc = 0.0;
            for (int k = 0; k < n; k++) {
                acc += C[i][k] * D[k][j];
            }
            F[i][j] = acc;
        }
    }
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            float acc = 0.0;
            for (int k = 0; k < n; k++) {
                acc += E[i][k] * F[k][j];
            }
            G[i][j] = acc;
        }
    }
}
"""


def _3mm_args() -> list[list]:
    n = 16
    rng = _rng(19)
    z = lambda: np.zeros((n, n))  # noqa: E731
    r = lambda: rng.random((n, n))  # noqa: E731
    return [[z(), r(), r(), z(), r(), r(), z(), n]]


register(
    BenchmarkSpec(
        name="3mm",
        suite="Polybench",
        source=_3MM_SRC,
        entry="kernel_3mm",
        make_arg_sets=_3mm_args,
        paper=PaperRow(loc=166, hotspot_pct=99.44, speedup=12.93, threads=16,
                       pattern="Task parallelism + Do-all"),
        notes="E=A*B and F=C*D are independent worker tasks; G=E*F is their "
        "barrier (Listing 5).",
    )
)

# ---------------------------------------------------------------------------
# mvt — two independent matrix-vector nests (task + do-all)
# ---------------------------------------------------------------------------

_MVT_SRC = """\
void kernel_mvt(float A[][], float x1[], float x2[], float y1[], float y2[], int n) {
    for (int i = 0; i < n; i++) {
        float acc = 0.0;
        for (int j = 0; j < n; j++) {
            acc += A[i][j] * y1[j];
        }
        x1[i] = x1[i] + acc;
    }
    for (int i = 0; i < n; i++) {
        float acc = 0.0;
        for (int j = 0; j < n; j++) {
            acc += A[j][i] * y2[j];
        }
        x2[i] = x2[i] + acc;
    }
}
"""


def _mvt_args() -> list[list]:
    n = 44
    rng = _rng(23)
    return [
        [rng.random((n, n)), np.zeros(n), np.zeros(n), rng.random(n), rng.random(n), n]
    ]


register(
    BenchmarkSpec(
        name="mvt",
        suite="Polybench",
        source=_MVT_SRC,
        entry="kernel_mvt",
        make_arg_sets=_mvt_args,
        paper=PaperRow(loc=114, hotspot_pct=91.24, speedup=11.39, threads=32,
                       pattern="Task parallelism + Do-all"),
        notes="x1 += A*y1 and x2 += A^T*y2 are independent worker tasks, "
        "each a do-all loop.",
    )
)

# ---------------------------------------------------------------------------
# fdtd-2d — task parallelism inside the time loop
# ---------------------------------------------------------------------------

_FDTD_SRC = """\
void kernel_fdtd_2d(float ex[][], float ey[][], float hz[][], float fict[], int tmax, int nx, int ny) {
    for (int t = 0; t < tmax; t++) {
        for (int j = 0; j < ny; j++) {
            ey[0][j] = fict[t];
        }
        for (int i = 1; i < nx; i++) {
            for (int j = 0; j < ny; j++) {
                ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
            }
        }
        for (int i = 0; i < nx; i++) {
            for (int j = 1; j < ny; j++) {
                ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
            }
        }
        for (int i = 0; i < nx - 1; i++) {
            for (int j = 0; j < ny - 1; j++) {
                hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
            }
        }
    }
}
"""


def _fdtd_args() -> list[list]:
    tmax, nx, ny = 30, 10, 10
    rng = _rng(29)
    return [
        [
            rng.random((nx, ny)),
            rng.random((nx, ny)),
            rng.random((nx, ny)),
            rng.random(tmax),
            tmax,
            nx,
            ny,
        ]
    ]


register(
    BenchmarkSpec(
        name="fdtd-2d",
        suite="Polybench",
        source=_FDTD_SRC,
        entry="kernel_fdtd_2d",
        make_arg_sets=_fdtd_args,
        paper=PaperRow(loc=142, hotspot_pct=76.51, speedup=5.19, threads=8,
                       pattern="Task parallelism"),
        expected_label="Task parallelism + Do-all",
        notes="Three independent field updates per time step + the hz "
        "barrier.  Our label adds '+ Do-all' because the worker loops are "
        "provably do-all — the paper implemented exactly that combination.",
    )
)

# ---------------------------------------------------------------------------
# bicg — reduction (single fused nest, as in PolyBench)
# ---------------------------------------------------------------------------

_BICG_SRC = """\
void kernel_bicg(float A[][], float s[], float q[], float p[], float r[], int nx, int ny) {
    for (int i = 0; i < nx; i++) {
        float acc = 0.0;
        for (int j = 0; j < ny; j++) {
            s[j] = s[j] + r[i] * A[i][j];
            acc += A[i][j] * p[j];
        }
        q[i] = acc;
    }
}
"""


def _bicg_args() -> list[list]:
    nx, ny = 44, 44
    rng = _rng(31)
    return [
        [
            rng.random((nx, ny)),
            np.zeros(ny),
            np.zeros(nx),
            rng.random(ny),
            rng.random(nx),
            nx,
            ny,
        ]
    ]


register(
    BenchmarkSpec(
        name="bicg",
        suite="Polybench",
        source=_BICG_SRC,
        entry="kernel_bicg",
        make_arg_sets=_bicg_args,
        paper=PaperRow(loc=191, hotspot_pct=74.58, speedup=5.64, threads=8,
                       pattern="Reduction"),
        notes="s[j] accumulates across the outer loop (array reduction) and "
        "acc across the inner loop (scalar reduction).",
    )
)

# ---------------------------------------------------------------------------
# gesummv — reduction with two reduction variables
# ---------------------------------------------------------------------------

_GESUMMV_SRC = """\
void kernel_gesummv(float alpha, float beta, float A[][], float B[][], float x[], float y[], int n) {
    for (int i = 0; i < n; i++) {
        float t = 0.0;
        float s = 0.0;
        for (int j = 0; j < n; j++) {
            t += A[i][j] * x[j];
            s += B[i][j] * x[j];
        }
        y[i] = alpha * t + beta * s;
    }
}
"""


def _gesummv_args() -> list[list]:
    n = 44
    rng = _rng(37)
    return [
        [1.5, 1.2, rng.random((n, n)), rng.random((n, n)), rng.random(n), np.zeros(n), n]
    ]


register(
    BenchmarkSpec(
        name="gesummv",
        suite="Polybench",
        source=_GESUMMV_SRC,
        entry="kernel_gesummv",
        make_arg_sets=_gesummv_args,
        paper=PaperRow(loc=188, hotspot_pct=65.33, speedup=5.06, threads=8,
                       pattern="Reduction"),
        notes="The inner loop carries two reduction variables (t and s), "
        "both reported — matching Section IV-D.",
    )
)
