"""Parsec benchmark (Table III row: fluidanimate).

The paper found a multi-loop pipeline between the two hotspot loops of
ComputeForces (Listing 3): the first sweeps cell-neighbor *pairs* updating
densities, the second sweeps *cells* computing forces and re-updating
neighboring densities.  With NBR pair-iterations per cell, one iteration of
the second loop depends on ~NBR iterations of the first — the paper's
``1/a = 1/0.05 = 20``.
"""

from __future__ import annotations

import numpy as np

from repro.bench_programs.registry import BenchmarkSpec, PaperRow, register

_FLUIDANIMATE_SRC = """\
void compute_forces(float density[], float forces[], float pairs[], int ncells, int nbr) {
    for (int p = 0; p < ncells * nbr; p++) {
        int c = p / nbr;
        density[c] += pairs[p] * 0.01;
        if (c + 1 < ncells) {
            density[c + 1] += pairs[p] * 0.005;
        }
    }
    for (int j = 0; j < ncells; j++) {
        float f = 0.0;
        for (int k = 0; k < nbr; k++) {
            f += sqrt(density[j] * density[j] + k * 0.1) * 0.05;
        }
        forces[j] = f;
        if (j + 1 < ncells) {
            density[j + 1] += f * 0.001;
        }
    }
}

void frame_loop(float density[], float forces[], float pairs[], int ncells, int nbr, int frames) {
    for (int t = 0; t < frames; t++) {
        compute_forces(density, forces, pairs, ncells, nbr);
    }
}
"""


def _fluidanimate_args() -> list[list]:
    rng = np.random.default_rng(61)
    ncells, nbr, frames = 60, 20, 3
    return [
        [
            np.zeros(ncells),
            np.zeros(ncells),
            rng.random(ncells * nbr),
            ncells,
            nbr,
            frames,
        ]
    ]


register(
    BenchmarkSpec(
        name="fluidanimate",
        suite="Parsec",
        source=_FLUIDANIMATE_SRC,
        entry="frame_loop",
        make_arg_sets=_fluidanimate_args,
        paper=PaperRow(loc=3987, hotspot_pct=99.54, speedup=1.5, threads=3,
                       pattern="Multi-loop pipeline"),
        notes="Neither loop is do-all (density accumulates within and across "
        "the loops); a ~ 1/nbr = 0.05 and b < 0, matching Table IV's "
        "fluidanimate row.",
    )
)
