"""Benchmark registry: name -> program, inputs, and the paper's numbers."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.lang.ast_nodes import Program
from repro.lang.analysis import source_loc
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program
from repro.patterns.engine import AnalysisResult, analyze


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table III."""

    loc: int
    hotspot_pct: float
    speedup: float
    threads: int
    pattern: str


@dataclass
class BenchmarkSpec:
    """One benchmark program with inputs and expected detection outcome."""

    name: str
    suite: str
    source: str
    entry: str
    make_arg_sets: Callable[[], list[list]]
    paper: PaperRow
    #: the label our engine is expected to produce (usually == paper.pattern;
    #: deviations are documented in EXPERIMENTS.md)
    expected_label: str = ""
    hotspot_threshold: float = 0.10
    min_pairs: int = 3
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.expected_label:
            self.expected_label = self.paper.pattern

    @functools.cached_property
    def program(self) -> Program:
        program = parse_program(self.source)
        validate_program(program)
        return program

    @property
    def loc(self) -> int:
        return source_loc(self.source)

    def arg_sets(self) -> list[list]:
        return self.make_arg_sets()


_REGISTRY: dict[str, BenchmarkSpec] = {}


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def _load_all() -> None:
    # Import for side effects: each suite module registers its benchmarks.
    from repro.bench_programs import bots, parsec, polybench, starbench  # noqa: F401

    # Generated corpora advertised via REPRO_CORPUS_PATH register here too,
    # so sweep pool workers and service process backends — which resolve
    # names in their own process after the fork — see the same registry
    # view as the parent that registered the corpus.
    from repro.corpus.suite import autoload_registered

    autoload_registered()


def get_benchmark(name: str) -> BenchmarkSpec:
    _load_all()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def all_benchmarks() -> list[BenchmarkSpec]:
    _load_all()
    return list(_REGISTRY.values())


@functools.lru_cache(maxsize=None)
def analyze_benchmark(name: str, engine: str = "compiled") -> AnalysisResult:
    """Analyze a registered benchmark (cached across the test session).

    *engine* picks the execution engine for the instrumented runs; results
    are identical across engines, but each ``(name, engine)`` pair caches
    separately so differential tests exercise real runs on both.
    """
    spec = get_benchmark(name)
    return analyze(
        spec.program,
        spec.entry,
        spec.arg_sets(),
        hotspot_threshold=spec.hotspot_threshold,
        min_pairs=spec.min_pairs,
        engine=engine,
    )
