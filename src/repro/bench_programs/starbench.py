"""Starbench benchmarks (Table III rows: rot-cc, kmeans, streamcluster)."""

from __future__ import annotations

import numpy as np

from repro.bench_programs.registry import BenchmarkSpec, PaperRow, register

# ---------------------------------------------------------------------------
# rot-cc — image rotation + color conversion, fused in the Starbench
# parallel version (Section IV-A)
# ---------------------------------------------------------------------------

_ROTCC_SRC = """\
void rot_cc(float src[], float tmp[], float out[], int w, int h) {
    for (int p = 0; p < w * h; p++) {
        tmp[p] = src[w * h - 1 - p];
    }
    for (int q = 0; q < w * h; q++) {
        float g = tmp[q] * 0.299 + tmp[q] * 0.587 + tmp[q] * 0.114;
        float u = (tmp[q] - g) * 0.492;
        float v = (tmp[q] - g) * 0.877;
        float lum = sqrt(g * g + u * u + v * v + 1.0);
        out[q] = lum + g * 0.5 + sqrt(fabs(u * v) + 2.0) * 0.25;
    }
}
"""


def _rotcc_args() -> list[list]:
    rng = np.random.default_rng(47)
    w, h = 64, 24
    n = w * h
    return [[rng.random(n), np.zeros(n), np.zeros(n), w, h]]


register(
    BenchmarkSpec(
        name="rot-cc",
        suite="Starbench",
        source=_ROTCC_SRC,
        entry="rot_cc",
        make_arg_sets=_rotcc_args,
        paper=PaperRow(loc=578, hotspot_pct=94.53, speedup=16.18, threads=32,
                       pattern="Fusion"),
        notes="Rotate then color-convert: pixel q of the second loop depends "
        "exactly on pixel q of the first — the same fusion the Starbench "
        "parallel version applies.",
    )
)

# ---------------------------------------------------------------------------
# kmeans — geometric decomposition of cluster() + reduction inside
# ---------------------------------------------------------------------------

_KMEANS_SRC = """\
void cluster(float pts[][], float centers[][], int member[], int n, int k, int dim) {
    for (int i = 0; i < n; i++) {
        float best = 1.0e30;
        int bi = 0;
        for (int c = 0; c < k; c++) {
            float d = 0.0;
            for (int f = 0; f < dim; f++) {
                float diff = pts[i][f] - centers[c][f];
                d += diff * diff;
            }
            if (d < best) {
                best = d;
                bi = c;
            }
        }
        member[i] = bi;
    }
    for (int c = 0; c < k; c++) {
        for (int f = 0; f < dim; f++) {
            float acc = 0.0;
            float cnt = 0.0;
            for (int i = 0; i < n; i++) {
                if (member[i] == c) {
                    acc += pts[i][f];
                    cnt += 1.0;
                }
            }
            centers[c][f] = (centers[c][f] + acc) / (cnt + 1.0);
        }
    }
}

void kmeans(float pts[][], float centers[][], int member[], int n, int kmax, int dim) {
    for (int k = 2; k <= kmax; k++) {
        cluster(pts, centers, member, n, k, dim);
    }
}
"""


def _kmeans_args() -> list[list]:
    rng = np.random.default_rng(53)
    n, kmax, dim = 48, 8, 4
    return [
        [
            rng.random((n, dim)),
            rng.random((kmax + 1, dim)),
            np.zeros(n, dtype=np.int64),
            n,
            kmax,
            dim,
        ]
    ]


register(
    BenchmarkSpec(
        name="kmeans",
        suite="Starbench",
        source=_KMEANS_SRC,
        entry="kmeans",
        make_arg_sets=_kmeans_args,
        paper=PaperRow(loc=347, hotspot_pct=2.04, speedup=3.97, threads=8,
                       pattern="Geometric decomposition + Reduction"),
        notes="cluster() is invoked once per k by the driver; its immediate "
        "loops are do-all and the center-update accumulation is a reduction.",
    )
)

# ---------------------------------------------------------------------------
# streamcluster — geometric decomposition of localSearch (Listings 6-7)
# ---------------------------------------------------------------------------

_STREAMCLUSTER_SRC = """\
void local_search(float work[][], float ctrs[][], float asgn[], int n, int k) {
    for (int i = 0; i < n; i++) {
        float best = 1.0e30;
        for (int c = 0; c < k; c++) {
            float d0 = work[i][0] - ctrs[c][0];
            float d1 = work[i][1] - ctrs[c][1];
            float d2 = work[i][2] - ctrs[c][2];
            float d3 = work[i][3] - ctrs[c][3];
            float d = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
            if (d < best) {
                best = d;
            }
        }
        asgn[i] = sqrt(best);
    }
    for (int c = 0; c < k; c++) {
        for (int f = 0; f < 4; f++) {
            ctrs[c][f] = ctrs[c][f] * 0.9 + 0.05;
        }
    }
}

void stream_cluster(float pts[][], float ctrs[][], float work[][], float asgn[], int total, int chunk, int k) {
    int processed = 0;
    while (processed < total) {
        for (int i = 0; i < chunk; i++) {
            work[i][0] = pts[processed + i][0];
            work[i][1] = pts[processed + i][1];
            work[i][2] = pts[processed + i][2];
            work[i][3] = pts[processed + i][3];
        }
        local_search(work, ctrs, asgn, chunk, k);
        processed += chunk;
    }
}
"""


def _streamcluster_args() -> list[list]:
    rng = np.random.default_rng(59)
    total, chunk, k = 192, 12, 10
    return [
        [
            rng.random((total, 4)),
            rng.random((k, 4)),
            np.zeros((chunk, 4)),
            np.zeros(chunk),
            total,
            chunk,
            k,
        ]
    ]


register(
    BenchmarkSpec(
        name="streamcluster",
        suite="Starbench",
        source=_STREAMCLUSTER_SRC,
        entry="stream_cluster",
        make_arg_sets=_streamcluster_args,
        paper=PaperRow(loc=551, hotspot_pct=49.99, speedup=6.38, threads=32,
                       pattern="Geometric decomposition"),
        notes="The streaming while-loop is sequential (centers feed the next "
        "chunk, Listing 6); localSearch is the geometric-decomposition "
        "candidate, called once per chunk (Listing 7).",
    )
)
