"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch a single base class.  Errors that originate from a MiniC
source location carry the 1-based ``line`` at which they occurred.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceError(ReproError):
    """An error anchored to a MiniC source location."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(SourceError):
    """Raised when the parser encounters an unexpected token."""


class ValidationError(SourceError):
    """Raised when a parsed program violates MiniC semantic rules."""


class InterpreterError(SourceError):
    """Raised when execution of a MiniC program fails."""


class StepLimitExceeded(InterpreterError):
    """Raised when execution exceeds the configured step budget."""


class AnalysisError(ReproError):
    """Raised when a profiling or pattern analysis cannot be performed."""


class SimulationError(ReproError):
    """Raised when a parallel-schedule simulation is mis-configured."""
