"""Loop peeling and fission.

The paper lists "loop optimizations such as peeling and fission" as future
work and actually *uses* peeling by hand: "We implemented a multi-loop
pipeline for reg_detect by peeling the first iteration of the first loop"
(Section IV-A).  These transforms provide that mechanically:

* :func:`peel_first_iteration` — hoist the first iteration of a canonical
  for-loop out in front, substituting the induction variable's start value;
* :func:`fission_loop` — split a loop body into two loops over the same
  range, valid when no scalar value flows across the split point within an
  iteration.

Both return a freshly re-parsed, re-validated program (like
:func:`~repro.transform.fusion.fuse_loops`).
"""

from __future__ import annotations

import copy

from repro.errors import ReproError
from repro.lang.analysis import stmt_declares, stmt_reads, stmt_writes
from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    Expr,
    For,
    IntLit,
    Program,
    Stmt,
    VarDecl,
    VarLV,
    VarRef,
    stmt_exprs,
    walk_stmts,
)
from repro.lang.parser import parse_program
from repro.lang.printer import format_program
from repro.lang.validate import validate_program
from repro.transform.fusion import _find_loop_parent, _induction_name


class PeelError(ReproError):
    """The requested loop cannot be peeled."""


class FissionError(ReproError):
    """The requested loop cannot be fissioned."""


def _substitute_var(stmts: list[Stmt], name: str, value: Expr) -> None:
    """Replace every read of *name* with *value* (a literal) in place."""

    def subst_expr(expr: Expr) -> Expr:
        from repro.lang.ast_nodes import BinOp, Call, UnaryOp

        if isinstance(expr, VarRef) and expr.name == name:
            return copy.deepcopy(value)
        if isinstance(expr, BinOp):
            expr.left = subst_expr(expr.left)
            expr.right = subst_expr(expr.right)
        elif isinstance(expr, UnaryOp):
            expr.operand = subst_expr(expr.operand)
        elif isinstance(expr, ArrayRef):
            expr.indices = [subst_expr(ix) for ix in expr.indices]
        elif isinstance(expr, Call):
            expr.args = [subst_expr(a) for a in expr.args]
        return expr

    for stmt in walk_stmts(stmts):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, ArrayLV):
                stmt.target.indices = [subst_expr(ix) for ix in stmt.target.indices]
            stmt.value = subst_expr(stmt.value)
        elif isinstance(stmt, VarDecl) and stmt.init is not None:
            stmt.init = subst_expr(stmt.init)
        else:
            for expr in stmt_exprs(stmt):
                subst_expr(expr)


def peel_first_iteration(program: Program, loop_region: int) -> Program:
    """Peel the first iteration of a canonical for-loop out in front.

    Requires ``for (iv = <int literal>; iv < bound; iv += <int literal>)``
    with the induction variable unwritten in the body.  The peeled copy is
    guarded by the loop's condition (with the start value substituted), so
    zero-trip loops stay zero-trip.
    """
    work = copy.deepcopy(program)
    loc = None
    for func in work.functions:
        loc = loc or _find_loop_parent(func.body, loop_region)
    if loc is None:
        raise PeelError("loop region not found")
    body, index = loc
    loop = body[index]
    if not isinstance(loop, For):
        raise PeelError("only for-loops can be peeled")
    iv = _induction_name(loop)
    if iv is None:
        raise PeelError("loop lacks a canonical induction variable")
    init_expr = loop.init.init if isinstance(loop.init, VarDecl) else loop.init.value
    if not isinstance(init_expr, IntLit):
        raise PeelError("loop start must be an integer literal")
    step = loop.step
    if (
        not isinstance(step, Assign)
        or step.op not in ("+=", "-=")
        or not isinstance(step.value, IntLit)
    ):
        raise PeelError("loop step must be a constant increment")
    for stmt in walk_stmts(loop.body):
        if iv in stmt_writes(stmt, recursive=False):
            raise PeelError("induction variable is written in the body")
        if iv in stmt_declares(stmt, recursive=False):
            raise PeelError("induction variable is redeclared in the body")

    start = init_expr.value
    delta = step.value.value if step.op == "+=" else -step.value.value

    peeled = copy.deepcopy(loop.body)
    _substitute_var(peeled, iv, IntLit(start))
    # Guard the peeled iteration with the (substituted) loop condition.
    from repro.lang.ast_nodes import If

    cond = copy.deepcopy(loop.cond)
    holder: list[Stmt] = [Assign(target=VarLV(name="__tmp"), op="=", value=cond)]
    _substitute_var(holder, iv, IntLit(start))
    guarded = If(cond=holder[0].value, then_body=peeled, else_body=[])

    # Advance the loop's start past the peeled iteration.
    new_start = IntLit(start + delta)
    if isinstance(loop.init, VarDecl):
        loop.init.init = new_start
    else:
        loop.init.value = new_start

    body.insert(index, guarded)
    source = format_program(work)
    out = parse_program(source)
    validate_program(out)
    return out


def fission_loop(program: Program, loop_region: int, split_at: int) -> Program:
    """Split a loop body at statement index *split_at* into two loops.

    The split is rejected when a scalar defined in the first half is read
    in the second half (its value would have to be expanded into an array)
    — array flow at the same index is fine because the first loop finishes
    before the second starts.
    """
    work = copy.deepcopy(program)
    loc = None
    for func in work.functions:
        loc = loc or _find_loop_parent(func.body, loop_region)
    if loc is None:
        raise FissionError("loop region not found")
    body, index = loc
    loop = body[index]
    if not isinstance(loop, For):
        raise FissionError("only for-loops can be fissioned")
    if not (0 < split_at < len(loop.body)):
        raise FissionError(
            f"split index {split_at} out of range 1..{len(loop.body) - 1}"
        )
    first = loop.body[:split_at]
    second = loop.body[split_at:]

    defined_first: set[str] = set()
    for stmt in first:
        defined_first |= stmt_writes(stmt) | stmt_declares(stmt)
    iv = _induction_name(loop)
    crossing = set()
    for stmt in second:
        crossing |= stmt_reads(stmt) & defined_first
    crossing.discard(iv)
    # array names are fine: whole-array flow survives the barrier between
    # the two loops; scalars would carry a per-iteration value across.
    from repro.lang.analysis import array_names

    scalar_crossing = crossing - array_names(work)
    if scalar_crossing:
        raise FissionError(
            f"scalar value(s) {sorted(scalar_crossing)} flow across the split"
        )

    second_loop = copy.deepcopy(loop)
    second_loop.body = second
    loop.body = first
    body.insert(index + 1, second_loop)

    source = format_program(work)
    out = parse_program(source)
    validate_program(out)
    return out
