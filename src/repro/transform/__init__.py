"""Code transformation support.

The paper's output classifies code blocks "according to the appropriate
support structure of the detected pattern" to ease manual transformation;
its future work is semi-automatic transformation.  This package provides
both:

* :func:`annotate` — pragma-style annotations on the statements of every
  detected pattern (fork/worker/barrier marks, ``parallel for`` and
  ``reduction`` clauses, pipeline stage markers), emitted through the
  source printer;
* :func:`fuse_loops` — an actual AST rewrite implementing the fusion
  pattern: two compatible do-all loops are merged into one, and the result
  is re-validated and re-parsed so it is a first-class program again.
"""

from repro.transform.annotations import annotate, annotated_source
from repro.transform.fusion import FusionError, fuse_loops
from repro.transform.loops import (
    FissionError,
    PeelError,
    fission_loop,
    peel_first_iteration,
)

__all__ = [
    "annotate",
    "annotated_source",
    "fuse_loops",
    "FusionError",
    "peel_first_iteration",
    "PeelError",
    "fission_loop",
    "FissionError",
]
