"""Pattern-driven source annotations.

``annotate`` turns an :class:`~repro.patterns.engine.AnalysisResult` into a
``stmt_id -> [pragma lines]`` map; ``annotated_source`` renders the program
with those pragmas, giving the programmer the classified view the paper
describes (Section III: "classifies CUs in a region according to the design
of the related supporting structures").
"""

from __future__ import annotations

from repro.lang.printer import format_program
from repro.patterns.engine import AnalysisResult
from repro.patterns.result import SUPPORTING_STRUCTURE


def _add(notes: dict[int, list[str]], stmt_id: int, text: str) -> None:
    notes.setdefault(stmt_id, []).append(text)


def annotate(result: AnalysisResult) -> dict[int, list[str]]:
    """Build the annotation map for every detected pattern."""
    notes: dict[int, list[str]] = {}
    program = result.program
    regions = program.regions
    hotspot_ids = result.hotspot_regions

    def loop_stmt(region: int):
        reg = regions.get(region)
        return None if reg is None or reg.kind != "loop" else reg.node

    # do-all / reduction loops in hotspots
    for region, lc in sorted(result.loop_classes.items()):
        if region not in hotspot_ids:
            continue
        stmt = loop_stmt(region)
        if stmt is None:
            continue
        if lc.is_doall:
            _add(notes, stmt.stmt_id, "#pragma repro parallel for  (do-all)")
        elif lc.is_reduction:
            clauses = ", ".join(
                f"{c.operator or '?'}:{c.var}" for c in lc.reductions
            )
            _add(
                notes,
                stmt.stmt_id,
                f"#pragma repro parallel for reduction({clauses})",
            )

    # multi-loop pipelines and fusion
    fused = {(f.loop_x, f.loop_y) for f in result.fusions}
    for p in result.pipelines:
        x_stmt = loop_stmt(p.loop_x)
        y_stmt = loop_stmt(p.loop_y)
        if x_stmt is None or y_stmt is None:
            continue
        if (p.loop_x, p.loop_y) in fused:
            _add(notes, x_stmt.stmt_id, "#pragma repro fuse-with next-stage  (do-all after fusion)")
            _add(notes, y_stmt.stmt_id, "#pragma repro fuse-with previous-stage")
            continue
        tag = f"a={p.a:.3g}, b={p.b:.3g}, e={p.efficiency:.3g}"
        _add(
            notes,
            x_stmt.stmt_id,
            f"#pragma repro pipeline stage 1 of 2 ({tag}) "
            f"[{SUPPORTING_STRUCTURE['Multi-loop pipeline']}]",
        )
        _add(notes, y_stmt.stmt_id, f"#pragma repro pipeline stage 2 of 2 ({tag})")

    # task parallelism: mark CU anchors
    task = result.best_task_parallelism()
    if task is not None:
        for cu in task.cus:
            mark = task.marks.get(cu.cu_id)
            if mark is None or not cu.stmts:
                continue
            anchor = cu.stmts[-1]
            _add(
                notes,
                anchor.stmt_id,
                f"#pragma repro task {mark}  ({cu.label}, "
                f"{SUPPORTING_STRUCTURE['Task parallelism']})",
            )

    # geometric decomposition: mark the candidate function's first statement
    for gd in result.geometric:
        func = program.function(gd.function)
        if func.body:
            _add(
                notes,
                func.body[0].stmt_id,
                f"#pragma repro geometric-decomposition of {gd.function}() "
                f"— call once per data chunk "
                f"[{SUPPORTING_STRUCTURE['Geometric decomposition']}]",
            )
    return notes


def annotated_source(result: AnalysisResult) -> str:
    """The program's source with pattern annotations inlined."""
    return format_program(result.program, annotations=annotate(result))
