"""Loop fusion as an AST rewrite.

Given a fusion candidate (both loops do-all, ``a = 1, b = 0``), merge the
second loop's body into the first.  The loops must be ``for`` loops in the
same statement list with structurally identical ranges; the second loop's
induction variable is renamed to the first's throughout its body.

The rewritten program is *re-emitted and re-parsed*, so statement ids,
region ids, and line numbers are consistent for further analysis, and it is
re-validated — a fused program is a first-class MiniC program.
"""

from __future__ import annotations

import copy

from repro.errors import ReproError
from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    Call,
    Expr,
    For,
    Program,
    Stmt,
    VarDecl,
    VarLV,
    VarRef,
    child_stmts,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.lang.parser import parse_program
from repro.lang.printer import format_expr, format_program
from repro.lang.validate import validate_program


class FusionError(ReproError):
    """The requested loops cannot be fused."""


def _find_loop_parent(body: list[Stmt], region: int) -> tuple[list[Stmt], int] | None:
    for i, stmt in enumerate(body):
        if isinstance(stmt, For) and stmt.region_id == region:
            return body, i
        for child_body in _child_bodies(stmt):
            found = _find_loop_parent(child_body, region)
            if found is not None:
                return found
    return None


def _child_bodies(stmt: Stmt) -> list[list[Stmt]]:
    from repro.lang.ast_nodes import If, While

    if isinstance(stmt, If):
        return [stmt.then_body, stmt.else_body]
    if isinstance(stmt, (For, While)):
        return [stmt.body]
    return []


def _range_signature(loop: For) -> tuple[str, str, str]:
    def fmt(node) -> str:
        if node is None:
            return ""
        if isinstance(node, VarDecl):
            init = format_expr(node.init) if node.init is not None else ""
            return f"{node.type}=:{init}"
        if isinstance(node, Assign):
            return f"{node.op}:{format_expr(node.value)}"
        return format_expr(node)

    return fmt(loop.init), _norm_cond(loop), fmt(loop.step)


def _norm_cond(loop: For) -> str:
    from repro.lang.printer import format_expr as fe

    cond = loop.cond
    if cond is None:
        return ""
    text = fe(cond)
    var = _induction_name(loop)
    return text.replace(var, "<iv>") if var else text


def _induction_name(loop: For) -> str | None:
    if isinstance(loop.init, VarDecl):
        return loop.init.name
    if isinstance(loop.init, Assign) and isinstance(loop.init.target, VarLV):
        return loop.init.target.name
    return None


def _rename_var(stmts: list[Stmt], old: str, new: str) -> None:
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, Assign):
            if isinstance(stmt.target, (VarLV, ArrayLV)) and stmt.target.name == old:
                stmt.target.name = new
        if isinstance(stmt, VarDecl) and stmt.name == old:
            raise FusionError(
                f"second loop redeclares induction variable {old!r}"
            )
        for expr in stmt_exprs(stmt):
            for node in walk_exprs(expr):
                if isinstance(node, (VarRef, ArrayRef)) and node.name == old:
                    node.name = new


def fuse_loops(program: Program, region_x: int, region_y: int) -> Program:
    """Fuse loop *region_y* into loop *region_x*; returns a new Program."""
    work = copy.deepcopy(program)

    loc_x = None
    loc_y = None
    for func in work.functions:
        loc_x = loc_x or _find_loop_parent(func.body, region_x)
        loc_y = loc_y or _find_loop_parent(func.body, region_y)
    if loc_x is None or loc_y is None:
        raise FusionError("loop region not found in program")
    body_x, ix = loc_x
    body_y, iy = loc_y
    if body_x is not body_y:
        raise FusionError("loops are not in the same statement list")
    loop_x = body_x[ix]
    loop_y = body_y[iy]
    if not isinstance(loop_x, For) or not isinstance(loop_y, For):
        raise FusionError("only for-loops can be fused")

    iv_x = _induction_name(loop_x)
    iv_y = _induction_name(loop_y)
    if iv_x is None or iv_y is None:
        raise FusionError("loops lack canonical induction variables")
    if _range_signature(loop_x) != _range_signature(loop_y):
        raise FusionError(
            f"loop ranges differ: {_range_signature(loop_x)} vs "
            f"{_range_signature(loop_y)}"
        )

    fused_body = list(loop_y.body)
    if iv_y != iv_x:
        _rename_var(fused_body, iv_y, iv_x)
    loop_x.body = list(loop_x.body) + fused_body
    del body_y[iy]

    # Re-emit and re-parse so ids, lines, and regions are consistent.
    source = format_program(work)
    fused = parse_program(source)
    validate_program(fused)
    return fused
