"""Statement reordering for task-commutation validation.

If two CUs can really run as parallel tasks, executing them in either
order must produce the same result.  :func:`swap_cu_statements` builds the
swapped program; :func:`validate_concurrent_tasks` runs it against the
serial original for every pair of detected concurrent tasks — the
task-parallelism analogue of the do-all replay validator.
"""

from __future__ import annotations

import copy
from typing import Any, Sequence

from repro.errors import ReproError
from repro.lang.ast_nodes import Program, Stmt
from repro.lang.parser import parse_program
from repro.lang.printer import format_program
from repro.lang.validate import validate_program
from repro.patterns.result import TaskParallelism
from repro.runtime.interpreter import Interpreter, RunResult
from repro.runtime.replay import results_equal


class ReorderError(ReproError):
    """The requested CUs cannot be swapped textually."""


def _top_level_spans(
    body: list[Stmt], stmt_ids_a: set[int], stmt_ids_b: set[int]
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Contiguous index ranges [start, end) of each CU's top-level stmts."""

    def span(ids: set[int]) -> tuple[int, int]:
        indices = [i for i, stmt in enumerate(body) if stmt.stmt_id in ids]
        if not indices:
            raise ReorderError("CU has no top-level statements in this body")
        lo, hi = min(indices), max(indices) + 1
        if hi - lo != len(indices):
            raise ReorderError("CU statements are not contiguous")
        return lo, hi

    span_a = span(stmt_ids_a)
    span_b = span(stmt_ids_b)
    if not (span_a[1] <= span_b[0] or span_b[1] <= span_a[0]):
        raise ReorderError("CU statement ranges overlap")
    return span_a, span_b


def swap_cu_statements(
    program: Program, task: TaskParallelism, cu_a: int, cu_b: int
) -> Program:
    """A new program with the top-level statements of two CUs swapped."""
    cus = {cu.cu_id: cu for cu in task.cus}
    if cu_a not in cus or cu_b not in cus:
        raise ReorderError(f"unknown CU ids {cu_a}/{cu_b}")
    region = program.regions.get(task.region)
    if region is None or region.node is None:
        raise ReorderError("region not found")

    work = copy.deepcopy(program)
    work_region = work.regions[task.region]
    body = work_region.node.body

    ids_a = {stmt.stmt_id for stmt in cus[cu_a].stmts}
    ids_b = {stmt.stmt_id for stmt in cus[cu_b].stmts}
    (a_lo, a_hi), (b_lo, b_hi) = _top_level_spans(body, ids_a, ids_b)
    if a_lo > b_lo:
        (a_lo, a_hi), (b_lo, b_hi) = (b_lo, b_hi), (a_lo, a_hi)

    reordered = (
        body[:a_lo]
        + body[b_lo:b_hi]
        + body[a_hi:b_lo]
        + body[a_lo:a_hi]
        + body[b_hi:]
    )
    work_region.node.body[:] = reordered

    source = format_program(work)
    out = parse_program(source)
    try:
        validate_program(out)
    except ReproError as exc:
        # e.g. a CU moved above declarations its expressions read: the swap
        # is textually impossible, which is different from non-commuting
        raise ReorderError(f"swapped program is not well-formed: {exc}") from exc
    return out


def validate_concurrent_tasks(
    program: Program,
    entry: str,
    args: Sequence[Any],
    task: TaskParallelism,
    max_pairs: int = 6,
    atol: float = 1e-9,
) -> tuple[int, int]:
    """Swap every pair of concurrent tasks and compare against serial.

    Returns ``(pairs checked, pairs failed)``.  Pairs whose statements
    cannot be swapped textually (non-contiguous or nested CUs) are skipped.
    """
    serial = Interpreter(program).run(entry, args)
    tasks = task.concurrent_tasks
    checked = failed = 0
    for i in range(len(tasks)):
        for j in range(i + 1, len(tasks)):
            if checked >= max_pairs:
                return checked, failed
            try:
                swapped = swap_cu_statements(program, task, tasks[i], tasks[j])
            except ReorderError:
                continue
            result = Interpreter(swapped).run(entry, args)
            checked += 1
            if not results_equal(serial, result, atol=atol):
                failed += 1
    return checked, failed
