"""Learned-vs-rule-based evaluation over a corpus split
(``repro learn eval``).

The showdown the ROADMAP asks for: train the lightweight classifiers of
:mod:`repro.learn.model` on one part of a generated corpus, then report
per-pattern precision/recall/F1 on the *held-out* part side-by-side with
the rule-based detector registry — both scored through the exact same
:func:`repro.corpus.score.score_corpus` machinery, so the comparison
cannot drift from what ``repro corpus score`` would say.

The train/held-out split is content-addressed rather than shuffled:
programs are ordered by ``sha256(f"{seed}:{name}")`` and the prefix is
held out.  The same ``(corpus, seed, holdout)`` triple therefore names
the same split on every machine, which is what makes training (and this
whole document) byte-deterministic.
"""

from __future__ import annotations

import hashlib
import io
from typing import Any

from repro.corpus.score import score_corpus, score_entries
from repro.corpus.suite import CorpusSuite
from repro.corpus.templates import PATTERN_DIMENSIONS
from repro.learn.features import FEATURES_VERSION, corpus_features
from repro.learn.model import LearnedModel, train_model
from repro.patterns.schema import SCHEMA_VERSION

LEARN_EVAL_RECORD = "learn_eval"

#: Fraction of the corpus held out for evaluation by default.
DEFAULT_HOLDOUT = 0.3


def holdout_split(
    names: list[str], seed: int, holdout: float = DEFAULT_HOLDOUT
) -> tuple[list[str], list[str]]:
    """Deterministic ``(train, held_out)`` name split.

    Names are ranked by the hex digest of ``f"{seed}:{name}"`` and the
    first ``round(holdout * n)`` are held out (at least 1, at most n-1
    when both sides can be non-empty).  Both returned lists preserve the
    *input* order, so datasets built from them stay in corpus order.
    """
    if not 0.0 <= holdout < 1.0:
        raise ValueError(f"holdout must be in [0, 1), got {holdout!r}")
    n = len(names)
    k = round(n * holdout)
    if holdout > 0.0 and n > 1:
        k = min(max(k, 1), n - 1)
    ranked = sorted(
        names,
        key=lambda name: hashlib.sha256(
            f"{seed}:{name}".encode("utf-8")
        ).hexdigest(),
    )
    held = set(ranked[:k])
    return [n_ for n_ in names if n_ not in held], [n_ for n_ in names if n_ in held]


def evaluate_corpus(
    suite: CorpusSuite,
    kind: str = "logistic",
    seed: int = 7,
    holdout: float = DEFAULT_HOLDOUT,
    cache=None,
    engine: str = "compiled",
    parallel: bool = False,
) -> dict[str, Any]:
    """Train on the corpus' train split and score both systems on the rest.

    Returns the versioned evaluation document: the split, the trained
    model's digest, and per-dimension confusion metrics for the learned
    model and the rule-based detectors over the same held-out programs.
    """
    features_doc = corpus_features(
        suite, cache=cache, engine=engine, parallel=parallel
    )
    rows = {row["name"]: row for row in features_doc["programs"]}
    train_names, held_names = holdout_split(
        [e.name for e in suite.entries], seed=seed, holdout=holdout
    )
    if not train_names or not held_names:
        raise ValueError(
            f"split left an empty side (train={len(train_names)}, "
            f"held_out={len(held_names)}); need a corpus of >= 2 programs"
        )
    model = train_model(
        [rows[name] for name in train_names],
        kind=kind,
        seed=seed,
        trained_on={
            "corpus": suite.name,
            "corpus_digest": suite.corpus_digest,
            "train_programs": len(train_names),
            "holdout": holdout,
        },
    )
    learned_predictions = {
        name: model.predict(rows[name]["features"]) for name in held_names
    }
    learned_score = score_corpus(suite, learned_predictions)
    held_set = set(held_names)
    rules_score = score_entries(
        suite,
        entries=[e for e in suite.entries if e.name in held_set],
        cache=cache,
        engine=engine,
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "record": LEARN_EVAL_RECORD,
        "corpus": suite.name,
        "corpus_digest": suite.corpus_digest,
        "engine": engine,
        "model": kind,
        "model_digest": model.model_digest,
        "features_version": FEATURES_VERSION,
        "seed": seed,
        "holdout": holdout,
        "split": {
            "train": len(train_names),
            "held_out": len(held_names),
            "held_out_names": held_names,
        },
        "learned": learned_score["detectors"],
        "rules": rules_score["detectors"],
        "learned_mismatches": learned_score["mismatches"],
        "rules_mismatches": rules_score["mismatches"],
    }


def train_on_corpus(
    suite: CorpusSuite,
    kind: str = "logistic",
    seed: int = 7,
    holdout: float = 0.0,
    cache=None,
    engine: str = "compiled",
    parallel: bool = False,
) -> LearnedModel:
    """Train a model artifact on the corpus (``repro learn train``).

    With ``holdout == 0`` the whole corpus is the training set; otherwise
    the evaluation split's train side is used, so a model trained here and
    the model inside :func:`evaluate_corpus` are byte-identical for the
    same parameters.
    """
    features_doc = corpus_features(
        suite, cache=cache, engine=engine, parallel=parallel
    )
    rows = {row["name"]: row for row in features_doc["programs"]}
    names = [e.name for e in suite.entries]
    if holdout > 0.0:
        names, _ = holdout_split(names, seed=seed, holdout=holdout)
    return train_model(
        [rows[name] for name in names],
        kind=kind,
        seed=seed,
        trained_on={
            "corpus": suite.name,
            "corpus_digest": suite.corpus_digest,
            "train_programs": len(names),
            "holdout": holdout,
        },
    )


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_METRICS = ("precision", "recall", "f1")


def comparison_table(doc: dict[str, Any]) -> str:
    """The learned-vs-rules text table (undefined metrics render as ``-``)."""
    from repro.reporting.tables import format_table

    rows = []
    for dim in PATTERN_DIMENSIONS:
        learned = doc["learned"][dim]
        rules = doc["rules"][dim]
        rows.append(
            [dim]
            + [learned[m] for m in _METRICS]
            + [rules[m] for m in _METRICS]
        )
    title = (
        f"Learned ({doc['model']}) vs rule-based detectors: {doc['corpus']} "
        f"(held-out {doc['split']['held_out']}/"
        f"{doc['split']['train'] + doc['split']['held_out']} programs, "
        f"seed {doc['seed']})"
    )
    return format_table(
        [
            "pattern",
            "lrn_precision", "lrn_recall", "lrn_f1",
            "rule_precision", "rule_recall", "rule_f1",
        ],
        rows,
        title=title,
    )


def comparison_csv(doc: dict[str, Any]) -> str:
    """CSV form of the comparison (undefined metrics as empty cells)."""
    import csv

    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["pattern"]
        + [f"learned_{m}" for m in _METRICS]
        + [f"rules_{m}" for m in _METRICS]
    )
    for dim in PATTERN_DIMENSIONS:
        learned = doc["learned"][dim]
        rules = doc["rules"][dim]
        writer.writerow(
            [dim]
            + ["" if learned[m] is None else learned[m] for m in _METRICS]
            + ["" if rules[m] is None else rules[m] for m in _METRICS]
        )
    return buf.getvalue()


def features_csv(features_doc: dict[str, Any]) -> str:
    """CSV of a ``learn features`` document: one row per program."""
    import csv

    names = features_doc["feature_names"]
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["name", "template"] + list(names))
    for row in features_doc["programs"]:
        writer.writerow(
            [row["name"], row["template"]]
            + [row["features"][n] for n in names]
        )
    return buf.getvalue()


def features_table(features_doc: dict[str, Any]) -> str:
    """Compact text summary of a features document (full vectors are for
    ``--json``/``--csv``; the table shows the most diagnostic columns)."""
    from repro.reporting.tables import format_table

    columns = (
        "loop_clean_frac",
        "loop_scalar_accum_frac",
        "loop_escaping_accum_frac",
        "pair_links_per_loop",
        "cu_sources_max",
        "hot_loop_share_max",
    )
    rows = [
        [row["name"], row["template"]]
        + [row["features"][c] for c in columns]
        for row in features_doc["programs"]
    ]
    title = (
        f"Features v{features_doc['features_version']}: "
        f"{features_doc['corpus']} ({len(features_doc['programs'])} programs, "
        f"{len(features_doc['feature_names'])} features)"
    )
    return format_table(["name", "template", *columns], rows, title=title)
