"""Learned detection baseline (ROADMAP item 5).

A stdlib-only subsystem that treats the rule-based pipeline's own
evidence — profiled dependences, trip counts, PET shape, hotspot shares,
CU graphs — as a feature vector, trains lightweight per-pattern
classifiers on the generated corpus of :mod:`repro.corpus`, and scores
them against the rule-based detectors on a held-out split through the
same scoring machinery (``repro learn features|train|eval``).

* :mod:`repro.learn.features` — deterministic, versioned feature vectors
* :mod:`repro.learn.model` — logistic regression + decision tree with a
  content-addressed JSON artifact
* :mod:`repro.learn.eval` — the train/held-out split and the
  learned-vs-rules comparison document
"""

from repro.learn.features import (
    FEATURE_NAMES,
    FEATURES_VERSION,
    corpus_features,
    extract_features,
    feature_vector,
    features_for_entry,
)
from repro.learn.model import (
    LEARN_MODEL_RECORD,
    MODEL_KINDS,
    LearnedModel,
    model_digest,
    train_model,
    validate_model_record,
)
from repro.learn.eval import (
    DEFAULT_HOLDOUT,
    LEARN_EVAL_RECORD,
    comparison_csv,
    comparison_table,
    evaluate_corpus,
    features_csv,
    features_table,
    holdout_split,
    train_on_corpus,
)

__all__ = [
    "FEATURE_NAMES",
    "FEATURES_VERSION",
    "corpus_features",
    "extract_features",
    "feature_vector",
    "features_for_entry",
    "LEARN_MODEL_RECORD",
    "MODEL_KINDS",
    "LearnedModel",
    "model_digest",
    "train_model",
    "validate_model_record",
    "DEFAULT_HOLDOUT",
    "LEARN_EVAL_RECORD",
    "comparison_csv",
    "comparison_table",
    "evaluate_corpus",
    "features_csv",
    "features_table",
    "holdout_split",
    "train_on_corpus",
]
