"""Stdlib-only learned detectors: logistic regression and a decision tree.

Both models are trained per pattern dimension (six independent binary
classifiers over the one shared feature vector of
:mod:`repro.learn.features`) and serialize to a content-addressed JSON
artifact following the repository's envelope convention
(``schema_version`` + a ``"record"`` discriminator), so artifacts
round-trip and can be diffed/compared by digest.

**Determinism.**  Training must be byte-identical for a fixed
``(corpus, seed)``:

* logistic regression uses full-batch gradient descent from a zero
  initialization — no RNG anywhere, a fixed iteration count, and examples
  folded in corpus order;
* the decision tree is CART with exhaustive threshold search, scanning
  features in index order and accepting a split only on a strictly better
  impurity, so ties resolve identically everywhere;
* floats are serialized by ``repr`` via ``json`` — equal computations
  give equal bytes.

The ``seed`` recorded in the artifact names the train/test *split* (see
:mod:`repro.learn.eval`), which is the only seeded choice in the system.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Sequence

from repro.corpus.templates import PATTERN_DIMENSIONS
from repro.learn.features import FEATURE_NAMES, FEATURES_VERSION
from repro.patterns.schema import SCHEMA_VERSION
from repro.profiling.serialize import canonical_json

LEARN_MODEL_RECORD = "learn_model"

#: Supported model kinds (CLI ``--model`` values).
MODEL_KINDS = ("logistic", "tree")

# Fixed training hyper-parameters — part of the model definition, not knobs,
# so two trainings of the same data cannot diverge.
_LOGISTIC_ITERATIONS = 400
_LOGISTIC_RATE = 0.5
_LOGISTIC_L2 = 1e-3
_TREE_MAX_DEPTH = 3
_TREE_MIN_LEAF = 2


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    ez = math.exp(z)
    return ez / (1.0 + ez)


# ---------------------------------------------------------------------------
# logistic regression (one weight vector per pattern dimension)
# ---------------------------------------------------------------------------


def _standardize(matrix: Sequence[Sequence[float]]) -> tuple[list[float], list[float]]:
    """Per-feature mean and scale over the training matrix.

    Scale is the population standard deviation, floored at 1 so constant
    features pass through unchanged instead of dividing by zero.
    """
    n = len(matrix)
    k = len(FEATURE_NAMES)
    means = [0.0] * k
    for row in matrix:
        for j in range(k):
            means[j] += row[j]
    means = [m / n for m in means]
    scales = [0.0] * k
    for row in matrix:
        for j in range(k):
            d = row[j] - means[j]
            scales[j] += d * d
    scales = [max(math.sqrt(s / n), 1e-9) for s in scales]
    return means, scales


def _train_logistic_one(
    matrix: list[list[float]], labels: list[int]
) -> tuple[list[float], float]:
    """Full-batch gradient descent for one binary dimension.

    *matrix* is already standardized.  Returns ``(weights, bias)``.
    """
    n = len(matrix)
    k = len(FEATURE_NAMES)
    w = [0.0] * k
    b = 0.0
    for _ in range(_LOGISTIC_ITERATIONS):
        grad_w = [0.0] * k
        grad_b = 0.0
        for row, y in zip(matrix, labels):
            z = b
            for j in range(k):
                z += w[j] * row[j]
            err = _sigmoid(z) - y
            for j in range(k):
                grad_w[j] += err * row[j]
            grad_b += err
        for j in range(k):
            w[j] -= _LOGISTIC_RATE * (grad_w[j] / n + _LOGISTIC_L2 * w[j])
        b -= _LOGISTIC_RATE * grad_b / n
    return w, b


# ---------------------------------------------------------------------------
# decision tree (CART, gini, deterministic tie-breaking)
# ---------------------------------------------------------------------------


def _gini(pos: int, total: int) -> float:
    if total == 0:
        return 0.0
    p = pos / total
    return 2.0 * p * (1.0 - p)


def _grow_tree(
    matrix: list[list[float]],
    labels: list[int],
    indices: list[int],
    depth: int,
) -> dict[str, Any]:
    pos = sum(labels[i] for i in indices)
    total = len(indices)
    leaf = {
        "leaf": True,
        "prediction": pos * 2 >= total and pos > 0,
        "positive": pos,
        "total": total,
    }
    if depth >= _TREE_MAX_DEPTH or pos == 0 or pos == total:
        return leaf
    parent_impurity = _gini(pos, total)
    best: tuple[float, int, float] | None = None  # (impurity, feature, threshold)
    for j in range(len(FEATURE_NAMES)):
        values = sorted({matrix[i][j] for i in indices})
        for lo, hi in zip(values, values[1:]):
            threshold = (lo + hi) / 2.0
            left = [i for i in indices if matrix[i][j] <= threshold]
            right = [i for i in indices if matrix[i][j] > threshold]
            if len(left) < _TREE_MIN_LEAF or len(right) < _TREE_MIN_LEAF:
                continue
            lp = sum(labels[i] for i in left)
            rp = sum(labels[i] for i in right)
            impurity = (
                len(left) * _gini(lp, len(left))
                + len(right) * _gini(rp, len(right))
            ) / total
            if best is None or impurity < best[0] - 1e-12:
                best = (impurity, j, threshold)
    if best is None or best[0] >= parent_impurity - 1e-12:
        return leaf
    _, j, threshold = best
    left = [i for i in indices if matrix[i][j] <= threshold]
    right = [i for i in indices if matrix[i][j] > threshold]
    return {
        "leaf": False,
        "feature": FEATURE_NAMES[j],
        "feature_index": j,
        "threshold": threshold,
        "left": _grow_tree(matrix, labels, left, depth + 1),
        "right": _grow_tree(matrix, labels, right, depth + 1),
    }


def _tree_predict(node: dict[str, Any], row: Sequence[float]) -> bool:
    while not node["leaf"]:
        if row[node["feature_index"]] <= node["threshold"]:
            node = node["left"]
        else:
            node = node["right"]
    return bool(node["prediction"])


# ---------------------------------------------------------------------------
# the model object + artifact round-trip
# ---------------------------------------------------------------------------


class LearnedModel:
    """Six per-dimension binary classifiers over the shared feature vector."""

    def __init__(self, doc: dict[str, Any]) -> None:
        self.doc = doc

    # -- queries -----------------------------------------------------------

    @property
    def kind(self) -> str:
        return self.doc["model"]

    @property
    def model_digest(self) -> str:
        return self.doc["model_digest"]

    def predict(self, features: dict[str, float]) -> dict[str, bool]:
        """Pattern-presence verdicts for one program's feature dict."""
        if self.doc["features_version"] != FEATURES_VERSION:
            raise ValueError(
                "model was trained on features version "
                f"{self.doc['features_version']}, extractor is {FEATURES_VERSION}"
            )
        row = [float(features[name]) for name in FEATURE_NAMES]
        out: dict[str, bool] = {}
        if self.kind == "logistic":
            means = self.doc["standardize"]["means"]
            scales = self.doc["standardize"]["scales"]
            std = [(v - m) / s for v, m, s in zip(row, means, scales)]
            for dim in PATTERN_DIMENSIONS:
                params = self.doc["dimensions"][dim]
                z = params["bias"]
                for w, v in zip(params["weights"], std):
                    z += w * v
                out[dim] = z >= 0.0
        else:
            for dim in PATTERN_DIMENSIONS:
                out[dim] = _tree_predict(self.doc["dimensions"][dim]["tree"], row)
        return out

    # -- persistence -------------------------------------------------------

    def to_json(self, pretty: bool = True) -> str:
        if pretty:
            return json.dumps(self.doc, sort_keys=True, indent=2) + "\n"
        return canonical_json(self.doc)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "LearnedModel":
        return cls(validate_model_record(
            json.loads(Path(path).read_text(encoding="utf-8"))
        ))


def model_digest(doc: dict[str, Any]) -> str:
    """Content address of a model: SHA-256 over the canonical JSON of the
    document with the digest field itself removed."""
    body = {k: v for k, v in doc.items() if k != "model_digest"}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def validate_model_record(doc: dict[str, Any]) -> dict[str, Any]:
    """Check *doc* is a model artifact of this schema version; return it."""
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported model schema version {doc.get('schema_version')!r}"
        )
    if doc.get("record") != LEARN_MODEL_RECORD:
        raise ValueError("document is not a learned-model record")
    if doc.get("model") not in MODEL_KINDS:
        raise ValueError(f"unknown model kind {doc.get('model')!r}")
    if doc.get("feature_names") != list(FEATURE_NAMES):
        raise ValueError("model feature names do not match this build")
    dims = doc.get("dimensions")
    if not isinstance(dims, dict) or set(dims) != set(PATTERN_DIMENSIONS):
        raise ValueError("model must cover every pattern dimension")
    if doc.get("model_digest") != model_digest(doc):
        raise ValueError("model digest does not match its contents")
    return doc


def train_model(
    dataset: list[dict[str, Any]],
    kind: str = "logistic",
    seed: int = 0,
    trained_on: dict[str, Any] | None = None,
) -> LearnedModel:
    """Train one model of *kind* over *dataset* rows.

    Each row carries ``name``, ``features`` (the full named vector), and
    ``truth`` (the six-dimension label dict).  Rows are consumed in the
    given order; pass them in corpus generation order for reproducible
    artifacts.  *trained_on* is free-form provenance recorded verbatim
    (corpus name/digest, split parameters).
    """
    if kind not in MODEL_KINDS:
        raise ValueError(f"unknown model kind {kind!r} (one of {MODEL_KINDS})")
    if not dataset:
        raise ValueError("cannot train on an empty dataset")
    matrix = [
        [float(row["features"][name]) for name in FEATURE_NAMES]
        for row in dataset
    ]
    labels_by_dim = {
        dim: [1 if row["truth"][dim] else 0 for row in dataset]
        for dim in PATTERN_DIMENSIONS
    }
    dimensions: dict[str, Any] = {}
    doc: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "record": LEARN_MODEL_RECORD,
        "model": kind,
        "features_version": FEATURES_VERSION,
        "feature_names": list(FEATURE_NAMES),
        "seed": seed,
        "examples": len(dataset),
        "trained_on": dict(trained_on or {}),
        "dimensions": dimensions,
    }
    if kind == "logistic":
        means, scales = _standardize(matrix)
        std = [
            [(v - m) / s for v, m, s in zip(row, means, scales)]
            for row in matrix
        ]
        doc["standardize"] = {"means": means, "scales": scales}
        for dim in PATTERN_DIMENSIONS:
            weights, bias = _train_logistic_one(std, labels_by_dim[dim])
            dimensions[dim] = {"weights": weights, "bias": bias}
    else:
        for dim in PATTERN_DIMENSIONS:
            dimensions[dim] = {
                "tree": _grow_tree(
                    matrix, labels_by_dim[dim], list(range(len(matrix))), 0
                )
            }
    doc["model_digest"] = model_digest(doc)
    return LearnedModel(doc)
