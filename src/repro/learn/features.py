"""Deterministic feature extraction for the learned detection baseline.

One program yields one fixed-order feature vector (:data:`FEATURE_NAMES`)
computed from the same profile evidence the rule-based detectors consume:
dependence densities per carrier depth, loop trip statistics, PET shape,
hotspot fractions, and CU-graph degree statistics.  The per-dimension
classifiers in :mod:`repro.learn.model` all share this one vector.

Two properties are load-bearing and test-enforced:

**Byte determinism.**  The same program and profile produce the same
vector on every run and under both profiling engines (profiles are
byte-identical across engines already).  Nothing here consults wall
clocks, hash randomization, or container iteration order that names could
perturb: every float fold runs over a sequence sorted by static region id.

**Metamorphic invariance.**  The corpus transforms
(:mod:`repro.corpus.transforms`) must not move the vector at all:

* *rename* is alpha-conversion — no feature mentions an identifier, and
  aggregations never order by name;
* *dead-statement insertion* adds write-only locals whose cost, carried
  WAW dependences, and standalone CUs would all leak into naive features.
  Extraction therefore works on the **live** view: a variable read
  nowhere in the program is dead, its dependences and loop accesses are
  dropped, the cost charged to its statements' lines is subtracted from
  every enclosing region before shares are taken, and its write-only CUs
  are excluded from graph statistics.  Line numbers (which insertion
  shifts) never appear in a feature; region ids (which it cannot shift —
  only functions and loops open regions) may.

``FEATURES_VERSION`` stamps every emitted vector; bump it whenever
:data:`FEATURE_NAMES` or any feature's definition changes, so a stored
model artifact can refuse vectors it was not trained on.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.lang.analysis import stmt_reads
from repro.lang.ast_nodes import (
    Assign,
    Call,
    For,
    If,
    Program,
    Stmt,
    VarDecl,
    VarLV,
    While,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.profiling.hotspots import DEFAULT_THRESHOLD
from repro.profiling.model import RAW, WAR, WAW, Profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.suite import CorpusEntry

#: Version of the feature definitions below.  Part of every feature
#: document and every model artifact; a mismatch is a hard error.
FEATURES_VERSION = 1

#: Fixed feature order — the contract between extraction and the model
#: artifacts.  Appending is a version bump; reordering is forbidden.
FEATURE_NAMES = (
    # static shape
    "shape_functions",
    "shape_loops",
    "shape_max_loop_depth",
    "shape_loops_with_calls_frac",
    "shape_calls_per_function",
    # PET shape
    "pet_nodes",
    "pet_depth",
    "pet_recursive",
    "pet_loop_node_frac",
    # loop trip statistics
    "trip_mean_avg",
    "trip_max",
    "trip_invocations_mean",
    # live dependence densities
    "dep_carried_raw_per_trip",
    "dep_carried_war_per_trip",
    "dep_carried_waw_per_trip",
    "dep_independent_raw_per_trip",
    "dep_carried_depth1_frac",
    "dep_carried_deep_frac",
    "dep_private_waw_frac",
    # per-loop structure (live view)
    "loop_clean_frac",
    "loop_carried_raw_frac",
    "loop_scalar_accum_frac",
    "loop_escaping_accum_frac",
    "loop_array_recurrence_frac",
    # cross-loop iteration pairs
    "pair_links_per_loop",
    "pair_points_mean",
    "pair_affine_max_r2",
    "pair_backward_frac",
    "pair_negative_skew_frac",
    # hotspot fractions (live cost shares)
    "hot_region_frac",
    "hot_loop_share_max",
    "hot_loop_frac",
    # CU-graph degree statistics (live, data-only)
    "cu_count_mean",
    "cu_edge_density_mean",
    "cu_sources_max",
    "cu_out_degree_max",
    # memory behaviour
    "mem_streaming_fraction",
    "mem_array_access_frac",
)


# ---------------------------------------------------------------------------
# liveness view
# ---------------------------------------------------------------------------


def _read_names(program: Program) -> set[str]:
    """Every variable name read anywhere in *program* (arrays by base name).

    A name absent from this set is *dead*: writes to it can never be
    observed, which is exactly the property the dead-statement transform
    relies on.  Compound assignments read their own target; call arguments
    count as reads of every name they mention.
    """
    reads: set[str] = set()
    for func in program.functions:
        for stmt in walk_stmts(func.body):
            reads |= stmt_reads(stmt, recursive=False)
    return reads


def _dead_lines(program: Program, read_names: set[str]) -> set[int]:
    """Source lines of statements whose only effect is a dead write.

    A statement is dead when it declares or plainly assigns a variable
    never read anywhere, and its right-hand side performs no call (a call
    could have effects regardless of the discarded result).
    """
    dead: set[int] = set()
    for func in program.functions:
        for stmt in walk_stmts(func.body):
            target: str | None = None
            if isinstance(stmt, VarDecl) and not stmt.dims:
                target = stmt.name
            elif isinstance(stmt, Assign) and isinstance(stmt.target, VarLV):
                target = stmt.target.name
            if target is None or target in read_names:
                continue
            has_call = any(
                isinstance(node, Call)
                for expr in stmt_exprs(stmt)
                for node in walk_exprs(expr)
            )
            if not has_call:
                dead.add(stmt.line)
    return dead


def _dead_cost_per_region(
    program: Program, profile: Profile, dead_lines: set[int]
) -> tuple[int, dict[int, int]]:
    """Instruction cost charged at dead lines, total and per enclosing region.

    The profiler charges a statement's instructions to its line and folds
    them into the inclusive cost of every enclosing region, so subtracting
    the line cost once per enclosing region recovers the exact cost the
    untransformed program would have reported.  "Enclosing" is dynamic: a
    dead statement in a callee is also inside every region that encloses
    *all* of the callee's call sites (computed as an intersection over the
    static call graph; recursion degrades conservatively to no outer
    attribution).
    """
    if not dead_lines:
        return 0, {}
    line_costs = profile.line_costs
    total = sum(line_costs.get(line, 0) for line in dead_lines)
    per_region: dict[int, int] = {}
    direct_total: dict[str, int] = {}
    user_funcs = {fn.name for fn in program.functions}
    #: callee name -> list of (caller name, region stack at the call site)
    call_sites: dict[str, list[tuple[str, tuple[int, ...]]]] = {}

    def walk(func_name: str, body: list[Stmt], stack: list[int]) -> None:
        for stmt in body:
            if stmt.line in dead_lines:
                cost = line_costs.get(stmt.line, 0)
                if cost:
                    direct_total[func_name] = (
                        direct_total.get(func_name, 0) + cost
                    )
                    for region in stack:
                        per_region[region] = per_region.get(region, 0) + cost
            for expr in stmt_exprs(stmt):
                for node in walk_exprs(expr):
                    if isinstance(node, Call) and node.name in user_funcs:
                        call_sites.setdefault(node.name, []).append(
                            (func_name, tuple(stack))
                        )
            if isinstance(stmt, (For, While)):
                stack.append(stmt.region_id)
                walk(func_name, stmt.body, stack)
                stack.pop()
            elif isinstance(stmt, If):
                walk(func_name, stmt.then_body, stack)
                walk(func_name, stmt.else_body, stack)

    for func in program.functions:
        walk(func.name, func.body, [func.region_id])

    # Regions guaranteed to contain every activation of a function: the
    # intersection over its call sites of (site stack + the caller's own
    # containing regions).
    containing: dict[str, set[int]] = {}
    visiting: set[str] = set()

    def containing_regions(name: str) -> set[int]:
        if name in containing:
            return containing[name]
        if name in visiting:  # recursion: no sound outer attribution
            return set()
        visiting.add(name)
        sites = call_sites.get(name)
        if not sites:
            result: set[int] = set()
        else:
            result = None  # type: ignore[assignment]
            for caller, stack in sites:
                regions = set(stack) | containing_regions(caller)
                result = regions if result is None else result & regions
            result = result or set()
        visiting.discard(name)
        containing[name] = result
        return result

    for name, cost in direct_total.items():
        for region in containing_regions(name):
            per_region[region] = per_region.get(region, 0) + cost
    return total, per_region


def _loop_depth(program: Program, loop: int) -> int:
    """Nesting depth of *loop*: 1 directly under a function body."""
    depth = 0
    region = program.regions.get(loop)
    while region is not None and region.kind == "loop":
        depth += 1
        region = (
            program.regions.get(region.parent)
            if region.parent is not None
            else None
        )
    return depth


def _induction_names(program: Program, loop: int) -> set[str]:
    """Induction variables of *loop* and every loop nested inside it."""
    names: set[str] = set()
    region = program.regions.get(loop)
    if region is not None and region.node is not None:
        names |= set(getattr(region.node, "induction_vars", frozenset()))
    for other in program.regions.values():
        if other.kind != "loop" or other.node is None:
            continue
        cursor = other
        while cursor is not None and cursor.parent is not None:
            if cursor.parent == loop:
                names |= set(other.node.induction_vars)
                break
            cursor = program.regions.get(cursor.parent)
    return names


# ---------------------------------------------------------------------------
# small deterministic folds
# ---------------------------------------------------------------------------


def _ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


def _fit_r2_b(pairs: list[tuple[int, int]]) -> tuple[float, float]:
    """(r², intercept) of the least-squares line over integer pairs.

    Pure integer accumulation until the final divisions, folded over the
    sorted pair list — deterministic regardless of profiling order.
    """
    pts = sorted(pairs)
    n = len(pts)
    if n < 2:
        return 0.0, float(pts[0][1]) if pts else 0.0
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    sxx = sum(p[0] * p[0] for p in pts)
    sxy = sum(p[0] * p[1] for p in pts)
    syy = sum(p[1] * p[1] for p in pts)
    den = n * sxx - sx * sx
    if den == 0:
        return 0.0, sy / n
    a = (n * sxy - sx * sy) / den
    b = (sy - a * sx) / n
    ss_tot = syy - sy * sy / n
    if ss_tot <= 0.0:
        return 1.0, b
    ss_res = sum((y - (a * x + b)) ** 2 for x, y in pts)
    return max(0.0, 1.0 - ss_res / ss_tot), b


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def extract_features(program: Program, profile: Profile) -> dict[str, float]:
    """The feature vector of one profiled program, as an ordered dict.

    Keys are exactly :data:`FEATURE_NAMES` in order; every value is a
    finite float.
    """
    read_names = _read_names(program)
    dead_lines = _dead_lines(program, read_names)
    dead_total, dead_by_region = _dead_cost_per_region(
        program, profile, dead_lines
    )
    live_total = max(profile.total_cost - dead_total, 0)

    def live_region_cost(region: int) -> int:
        return profile.region_cost(region) - dead_by_region.get(region, 0)

    f: dict[str, float] = {}

    # -- static shape ------------------------------------------------------
    n_functions = len(program.functions)
    loop_regions = sorted(
        r.region_id for r in program.regions.values() if r.kind == "loop"
    )
    n_loops = len(loop_regions)
    user_funcs = {fn.name for fn in program.functions}
    calls_total = 0
    loops_with_calls = 0
    max_depth = 0
    for loop in loop_regions:
        max_depth = max(max_depth, _loop_depth(program, loop))
        node = program.regions[loop].node
        body = node.body if node is not None else []
        has_call = False
        for stmt in walk_stmts(body):
            for expr in stmt_exprs(stmt):
                for sub in walk_exprs(expr):
                    if isinstance(sub, Call) and sub.name in user_funcs:
                        has_call = True
        if has_call:
            loops_with_calls += 1
    for func in program.functions:
        for stmt in walk_stmts(func.body):
            for expr in stmt_exprs(stmt):
                for sub in walk_exprs(expr):
                    if isinstance(sub, Call) and sub.name in user_funcs:
                        calls_total += 1
    f["shape_functions"] = float(n_functions)
    f["shape_loops"] = float(n_loops)
    f["shape_max_loop_depth"] = float(max_depth)
    f["shape_loops_with_calls_frac"] = _ratio(loops_with_calls, n_loops)
    f["shape_calls_per_function"] = _ratio(calls_total, n_functions)

    # -- PET shape ---------------------------------------------------------
    pet_nodes = 0
    pet_depth = 0
    pet_recursive = 0.0
    pet_loop_nodes = 0
    if profile.pet is not None:
        pet_depth = profile.pet.max_depth()
        for node in profile.pet.walk():
            pet_nodes += 1
            if node.kind == "loop":
                pet_loop_nodes += 1
            if node.recursive:
                pet_recursive = 1.0
    f["pet_nodes"] = float(pet_nodes)
    f["pet_depth"] = float(pet_depth)
    f["pet_recursive"] = pet_recursive
    f["pet_loop_node_frac"] = _ratio(pet_loop_nodes, pet_nodes)

    # -- loop trips --------------------------------------------------------
    executed_loops = sorted(profile.loop_trips)
    trips_total = 0
    avg_sum = 0.0
    max_trip = 0
    inv_total = 0
    for loop in executed_loops:
        inv, total, peak = profile.loop_trips[loop]
        trips_total += total
        inv_total += inv
        max_trip = max(max_trip, peak)
        avg_sum += _ratio(total, inv)
    n_exec = len(executed_loops)
    f["trip_mean_avg"] = _ratio(avg_sum, n_exec)
    f["trip_max"] = float(max_trip)
    f["trip_invocations_mean"] = _ratio(inv_total, n_exec)

    # -- live dependence densities ----------------------------------------
    induction_by_loop = {
        loop: _induction_names(program, loop) for loop in executed_loops
    }
    carried_counts = {RAW: 0, WAR: 0, WAW: 0}
    independent_raw = 0
    depth1 = 0
    deep = 0
    private_waw = 0
    nonprivate_waw = 0
    carried_raw_loops: set[int] = set()
    scalar_accum_loops: set[int] = set()
    escaping_accum_loops: set[int] = set()
    array_recurrence_loops: set[int] = set()
    from repro.lang.analysis import array_names

    arrays = array_names(program)

    # Privatizable per classify_loop: written-before-read, non-escaping.
    def non_escaping(loop: int) -> set[str]:
        region = program.regions.get(loop)
        if region is None or not program.has_function(region.function):
            return set()
        func = program.function(region.function)
        names = {
            p.name for p in func.params if not p.is_array and not p.by_ref
        }
        for stmt in walk_stmts(func.body):
            if isinstance(stmt, VarDecl):
                names.add(stmt.name)
        return names

    privatizable_by_loop: dict[int, set[str]] = {}
    for loop in executed_loops:
        local = non_escaping(loop)
        privatizable_by_loop[loop] = {
            var
            for (lp, var) in profile.loop_accessed
            if lp == loop
            and var in read_names
            and (lp, var) not in profile.read_first
            and var in local
        }

    # Same-iteration read lines per (loop, var) for the escaping-accumulator
    # signal: a scalar consumed at a line other than its accumulating write
    # is a prefix sum, not a reduction.
    independent_read_lines: dict[tuple[int, str], set[int]] = {}
    for dep in profile.live_deps(read_names):
        if dep.carrier is None:
            if dep.kind == RAW:
                if dep.region in induction_by_loop:
                    independent_read_lines.setdefault(
                        (dep.region, dep.var), set()
                    ).add(dep.dst_line)
                independent_raw += 1
            continue
        loop = dep.carrier
        induction = induction_by_loop.get(loop, set())
        if dep.var in induction:
            continue
        carried_counts[dep.kind] = carried_counts.get(dep.kind, 0) + 1
        if _loop_depth(program, loop) <= 1:
            depth1 += 1
        else:
            deep += 1
        if dep.kind == WAW or dep.kind == WAR:
            if dep.var in privatizable_by_loop.get(loop, set()):
                private_waw += 1
            else:
                nonprivate_waw += 1
        if dep.kind == RAW:
            carried_raw_loops.add(loop)
            if dep.var in arrays:
                array_recurrence_loops.add(loop)
    # Scalar accumulators: carried RAW + carried WAW on the same scalar.
    raw_vars: dict[int, set[str]] = {}
    waw_vars: dict[int, set[str]] = {}
    raw_write_lines: dict[tuple[int, str], set[int]] = {}
    for dep in profile.live_deps(read_names):
        if dep.carrier is None:
            continue
        if dep.var in induction_by_loop.get(dep.carrier, set()):
            continue
        if dep.var in arrays:
            continue
        if dep.kind == RAW:
            raw_vars.setdefault(dep.carrier, set()).add(dep.var)
            raw_write_lines.setdefault((dep.carrier, dep.var), set()).add(
                dep.src_line
            )
        elif dep.kind == WAW:
            waw_vars.setdefault(dep.carrier, set()).add(dep.var)
    for loop in executed_loops:
        accums = raw_vars.get(loop, set()) & waw_vars.get(loop, set())
        if not accums:
            continue
        scalar_accum_loops.add(loop)
        for var in accums:
            write_lines = raw_write_lines.get((loop, var), set())
            reads_elsewhere = independent_read_lines.get((loop, var), set())
            if reads_elsewhere - write_lines:
                escaping_accum_loops.add(loop)
                break

    trips_norm = max(trips_total, 1)
    carried_total = sum(carried_counts.values())
    f["dep_carried_raw_per_trip"] = carried_counts[RAW] / trips_norm
    f["dep_carried_war_per_trip"] = carried_counts[WAR] / trips_norm
    f["dep_carried_waw_per_trip"] = carried_counts[WAW] / trips_norm
    f["dep_independent_raw_per_trip"] = independent_raw / trips_norm
    f["dep_carried_depth1_frac"] = _ratio(depth1, carried_total)
    f["dep_carried_deep_frac"] = _ratio(deep, carried_total)
    f["dep_private_waw_frac"] = _ratio(private_waw, private_waw + nonprivate_waw)

    clean_loops = 0
    for loop in executed_loops:
        induction = induction_by_loop[loop]
        has_carried = any(
            dep.carrier == loop
            and dep.var not in induction
            and not (
                dep.kind in (WAR, WAW)
                and dep.var in privatizable_by_loop.get(loop, set())
            )
            for dep in profile.live_deps(read_names)
        )
        if not has_carried:
            clean_loops += 1
    f["loop_clean_frac"] = _ratio(clean_loops, n_exec)
    f["loop_carried_raw_frac"] = _ratio(len(carried_raw_loops), n_exec)
    f["loop_scalar_accum_frac"] = _ratio(len(scalar_accum_loops), n_exec)
    f["loop_escaping_accum_frac"] = _ratio(len(escaping_accum_loops), n_exec)
    f["loop_array_recurrence_frac"] = _ratio(
        len(array_recurrence_loops), n_exec
    )

    # -- cross-loop iteration pairs ---------------------------------------
    pair_keys = sorted(profile.pairs)
    n_links = len(pair_keys)
    points_total = 0
    best_r2 = 0.0
    backward = 0
    negative_skew = 0
    for key in pair_keys:
        loop_x, loop_y = key
        pairs = profile.pairs[key]
        points_total += len(pairs)
        reg_x = program.regions.get(loop_x)
        reg_y = program.regions.get(loop_y)
        if reg_x is not None and reg_y is not None and reg_x.line > reg_y.line:
            backward += 1
        if len(pairs) >= 2:
            r2, intercept = _fit_r2_b(pairs)
            best_r2 = max(best_r2, r2)
            if intercept < 0.0:
                negative_skew += 1
    f["pair_links_per_loop"] = _ratio(n_links, n_exec)
    f["pair_points_mean"] = _ratio(points_total, n_links)
    f["pair_affine_max_r2"] = best_r2
    f["pair_backward_frac"] = _ratio(backward, n_links)
    f["pair_negative_skew_frac"] = _ratio(negative_skew, n_links)

    # -- hotspot fractions over live cost ---------------------------------
    pet_regions = sorted(
        {node.region for node in profile.pet.walk()}
    ) if profile.pet is not None else []
    hot = 0
    hot_loops = 0
    best_loop_share = 0.0
    for region in pet_regions:
        share = _ratio(live_region_cost(region), live_total)
        kind = (
            program.regions[region].kind
            if region in program.regions
            else "function"
        )
        if kind == "loop":
            best_loop_share = max(best_loop_share, share)
        if share >= DEFAULT_THRESHOLD:
            hot += 1
            if kind == "loop":
                hot_loops += 1
    f["hot_region_frac"] = _ratio(hot, len(pet_regions))
    f["hot_loop_share_max"] = best_loop_share
    f["hot_loop_frac"] = _ratio(hot_loops, hot)

    # -- CU-graph degree statistics (live, data-only) ---------------------
    from repro.cu.detect import detect_cus
    from repro.cu.graph import build_cu_graph

    cu_counts: list[int] = []
    densities: list[float] = []
    sources_max = 0
    out_degree_max = 0
    function_regions = sorted(
        r.region_id for r in program.regions.values() if r.kind == "function"
    )
    for region in function_regions:
        if profile.region_cost(region) <= 0:
            continue
        cus = detect_cus(program, region)
        live_cus = [
            cu
            for cu in cus
            if cu.reads
            or cu.callees
            or cu.early_exit
            or cu.kind != "plain"
            or any(w in read_names for w in cu.writes)
        ]
        if not live_cus:
            continue
        graph = build_cu_graph(cus, profile, region, include_control=False)
        live_ids = {cu.cu_id for cu in live_cus}
        n = len(live_ids)
        edges = sum(
            1 for src, dst, _ in graph.edges() if src in live_ids and dst in live_ids
        )
        cu_counts.append(n)
        densities.append(_ratio(edges, n * (n - 1)) if n > 1 else 0.0)
        sources = sum(
            1
            for cu_id in sorted(live_ids)
            if not any(p in live_ids for p in graph.predecessors(cu_id))
        )
        sources_max = max(sources_max, sources)
        for cu_id in sorted(live_ids):
            deg = sum(1 for s in graph.successors(cu_id) if s in live_ids)
            out_degree_max = max(out_degree_max, deg)
    f["cu_count_mean"] = _ratio(sum(cu_counts), len(cu_counts))
    f["cu_edge_density_mean"] = _ratio(sum(densities), len(densities))
    f["cu_sources_max"] = float(sources_max)
    f["cu_out_degree_max"] = float(out_degree_max)

    # -- memory behaviour --------------------------------------------------
    f["mem_streaming_fraction"] = _ratio(
        profile.unique_array_addresses, live_total
    )
    f["mem_array_access_frac"] = _ratio(profile.array_accesses, live_total)

    out = {name: float(f[name]) for name in FEATURE_NAMES}
    for name, value in out.items():
        if not math.isfinite(value):  # pragma: no cover - defensive
            raise ValueError(f"non-finite feature {name!r}: {value!r}")
    return out


def feature_vector(program: Program, profile: Profile) -> list[float]:
    """The vector in :data:`FEATURE_NAMES` order."""
    features = extract_features(program, profile)
    return [features[name] for name in FEATURE_NAMES]


# ---------------------------------------------------------------------------
# corpus-entry convenience (shared by eval, CLI, and the smoke gate)
# ---------------------------------------------------------------------------


def features_for_entry(
    entry: "CorpusEntry", cache=None, engine: str = "compiled"
) -> dict[str, float]:
    """Profile one corpus entry and extract its feature vector."""
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program
    from repro.profiling.cache import cached_profile_runs
    from repro.service.jobs import build_call_args

    program = parse_program(entry.source)
    validate_program(program)
    args = build_call_args(entry.arg_specs, seed=0)
    profile, _ = cached_profile_runs(
        program, entry.entry, [args], cache=cache, engine=engine
    )
    return extract_features(program, profile)


def _features_worker(payload: tuple[Any, str | None, str]) -> tuple[str, dict[str, float]]:
    """Process-pool worker: (entry, cache_dir, engine) -> (name, features)."""
    entry, cache_dir, engine = payload
    cache = None
    if cache_dir:
        from repro.profiling.cache import ProfileCache

        cache = ProfileCache(cache_dir)
    return entry.name, features_for_entry(entry, cache=cache, engine=engine)


def corpus_features(
    suite,
    cache=None,
    engine: str = "compiled",
    parallel: bool = False,
    max_workers: int | None = None,
) -> dict[str, Any]:
    """Feature vectors for every entry of a corpus, as a versioned document.

    With *parallel*, extraction fans out over a process pool; results are
    joined by program name back into generation order, so the document is
    byte-identical to a serial run (the determinism regression asserts
    this).
    """
    rows: dict[str, dict[str, float]] = {}
    if parallel and len(suite.entries) > 1:
        from concurrent.futures import ProcessPoolExecutor

        cache_dir = getattr(cache, "root", None)
        payloads = [
            (entry, str(cache_dir) if cache_dir else None, engine)
            for entry in suite.entries
        ]
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                for name, features in pool.map(_features_worker, payloads):
                    rows[name] = features
        except (OSError, RuntimeError):
            rows = {}  # fall back to serial below
    if not rows:
        for entry in suite.entries:
            rows[entry.name] = features_for_entry(
                entry, cache=cache, engine=engine
            )
    from repro.patterns.schema import SCHEMA_VERSION

    return {
        "schema_version": SCHEMA_VERSION,
        "record": "learn_features",
        "features_version": FEATURES_VERSION,
        "feature_names": list(FEATURE_NAMES),
        "corpus": suite.name,
        "corpus_digest": suite.corpus_digest,
        "programs": [
            {
                "name": entry.name,
                "template": entry.template,
                "truth": {k: bool(v) for k, v in entry.truth.items()},
                "features": rows[entry.name],
            }
            for entry in suite.entries
        ],
    }
