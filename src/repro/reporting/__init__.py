"""Human-readable output: ASCII tables, DOT graphs, analysis reports."""

from repro.reporting.tables import format_table
from repro.reporting.dot import cu_graph_dot, pet_dot
from repro.reporting.report import analysis_report, trace_report

__all__ = [
    "format_table",
    "cu_graph_dot",
    "pet_dot",
    "analysis_report",
    "trace_report",
]
