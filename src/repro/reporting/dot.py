"""DOT (Graphviz) emission for CU graphs and PETs.

The paper's Figures 2 and 3 are drawings of exactly these structures; the
benchmark harness regenerates them as ``.dot`` text so they can be rendered
with any Graphviz installation.
"""

from __future__ import annotations

from repro.patterns.result import TaskParallelism
from repro.profiling.model import PETNode

_MARK_COLORS = {"fork": "#8ecae6", "worker": "#a7c957", "barrier": "#f4a261"}


def _esc(text: str) -> str:
    return text.replace('"', '\\"')


def cu_graph_dot(task: TaskParallelism, title: str = "CU graph") -> str:
    """Render a classified CU graph (Figure 3 style) as DOT text."""
    lines = [f'digraph "{_esc(title)}" {{', "  rankdir=TB;", "  node [shape=box];"]
    for cu in task.cus:
        mark = task.marks.get(cu.cu_id, "?")
        color = _MARK_COLORS.get(mark, "#dddddd")
        label = f"{cu.label}\\n{mark}\\nlines {min(cu.lines)}-{max(cu.lines)}"
        lines.append(
            f'  cu{cu.cu_id} [label="{label}", style=filled, fillcolor="{color}"];'
        )
    for src, dst, data in task.graph.edges():
        style = "dashed" if data.get("kind") == "control" else "solid"
        vars_txt = ",".join(sorted(data.get("vars") or []))
        lines.append(
            f'  cu{src} -> cu{dst} [style={style}, label="{_esc(vars_txt)}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def pet_dot(root: PETNode, title: str = "PET") -> str:
    """Render a Program Execution Tree (Figure 2 style) as DOT text."""
    lines = [f'digraph "{_esc(title)}" {{', "  node [shape=ellipse];"]
    seen: set[int] = set()

    def visit(node: PETNode) -> None:
        if node.node_id in seen:
            return
        seen.add(node.node_id)
        extra = " (recursive)" if node.recursive else ""
        label = (
            f"{node.name}{extra}\\ninstr={node.inclusive_cost}"
            f"\\ncalls={node.invocations}"
        )
        if node.kind == "loop":
            label += f"\\ntrips={node.total_trips}"
        shape = "box" if node.kind == "loop" else "ellipse"
        lines.append(f'  n{node.node_id} [label="{label}", shape={shape}];')
        for child in node.children:
            visit(child)
            lines.append(f"  n{node.node_id} -> n{child.node_id};")

    visit(root)
    lines.append("}")
    return "\n".join(lines) + "\n"
