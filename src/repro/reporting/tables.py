"""Minimal ASCII table renderer used by the benchmark harnesses."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* with column-wise alignment.

    Numbers are right-aligned, everything else left-aligned.  Returns a
    string ending in a newline.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_number(row[i]) for row in rows) if rows else False
        for i in range(ncols)
    ]

    def line(items: Sequence[str], pad_numeric: bool) -> str:
        out = []
        for i, item in enumerate(items):
            if pad_numeric and numeric[i]:
                out.append(item.rjust(widths[i]))
            else:
                out.append(item.ljust(widths[i]))
        return "| " + " | ".join(out) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(sep)
    parts.append(line(list(headers), pad_numeric=False))
    parts.append(sep)
    for row in cells:
        parts.append(line(row, pad_numeric=True))
    parts.append(sep)
    return "\n".join(parts) + "\n"


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_number(value: object) -> bool:
    # None cells render as "-" and keep a numeric column right-aligned.
    if value is None:
        return True
    return isinstance(value, (int, float)) and not isinstance(value, bool)
