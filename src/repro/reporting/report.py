"""Full analysis report: what the tool tells the programmer.

This mirrors the output of the paper's tool: hotspots, the patterns found
in each, the pipeline coefficients with their Table II reading, the
fork/worker/barrier classification, the annotated source — and, when the
result carries an :class:`~repro.patterns.framework.AnalysisTrace`, the
per-stage telemetry plus every candidate the thresholds rejected, with the
deciding threshold spelled out.
"""

from __future__ import annotations

from repro.patterns.engine import AnalysisResult, summarize_patterns
from repro.patterns.framework import Evidence
from repro.patterns.interpretation import interpret_pipeline
from repro.patterns.result import SUPPORTING_STRUCTURE
from repro.reporting.tables import format_table
from repro.transform.annotations import annotated_source


def _region_name(result: AnalysisResult, region: int) -> str:
    reg = result.program.regions.get(region)
    return reg.name if reg is not None else f"region {region}"


def _evidence_line(result: AnalysisResult, ev: Evidence) -> str:
    where = " -> ".join(_region_name(result, r) for r in ev.regions)
    text = f"  {ev.status} {ev.kind} [{where}]: {ev.reason}"
    if ev.threshold is not None and ev.observed is not None:
        op = ">=" if ev.accepted else "<"
        text += f" ({ev.observed:.3g} {op} {ev.threshold}={ev.threshold_value:g})"
    if ev.detail:
        text += f" — {ev.detail}"
    return text


def trace_report(result: AnalysisResult, rejected_only: bool = True) -> str:
    """Render the detection trace: per-stage telemetry and evidence.

    ``rejected_only`` keeps the evidence listing to the candidates the
    thresholds killed (the part a user cannot reconstruct from the main
    report); pass ``False`` for the full accepted+rejected stream.
    """
    trace = result.trace
    if trace is None:
        return ""
    parts: list[str] = []
    rows = []
    for st in trace.stages:
        counters = " ".join(f"{k}={st.counters[k]}" for k in sorted(st.counters))
        rows.append([st.stage, st.detector, st.wall_time_s * 1e3, counters or "-"])
    parts.append(
        format_table(
            ["stage", "detector", "ms", "counters"],
            rows,
            title="Detection trace",
        )
    )
    evidence = trace.rejected() if rejected_only else trace.evidence
    if evidence:
        parts.append("Candidate evidence:" if not rejected_only
                     else "Rejected candidates:")
        for ev in evidence:
            parts.append(_evidence_line(result, ev))
    return "\n".join(parts)


def analysis_report(
    result: AnalysisResult,
    include_source: bool = True,
    include_trace: bool = True,
) -> str:
    """Render the full detection report as text."""
    parts: list[str] = []
    label = summarize_patterns(result)
    parts.append(f"Primary pattern: {label}")
    structure = SUPPORTING_STRUCTURE.get(label.split(" + ")[0])
    if structure:
        parts.append(f"Suggested supporting structure: {structure}")
    parts.append("")

    parts.append(
        format_table(
            ["region", "kind", "share %", "instructions"],
            [
                [_region_name(result, h.region), h.kind, 100 * h.share, h.inclusive_cost]
                for h in result.hotspots
            ],
            title="Hotspots",
        )
    )

    if result.pipelines:
        rows = []
        fused = {(f.loop_x, f.loop_y) for f in result.fusions}
        for p in result.pipelines:
            kind = "fusion" if (p.loop_x, p.loop_y) in fused else "pipeline"
            rows.append(
                [
                    _region_name(result, p.loop_x),
                    _region_name(result, p.loop_y),
                    p.a,
                    p.b,
                    p.efficiency,
                    kind,
                ]
            )
        parts.append(
            format_table(
                ["loop x", "loop y", "a", "b", "e", "verdict"],
                rows,
                title="Multi-loop pipelines (Eq. 1-2)",
            )
        )
        for p in result.pipelines:
            parts.append(
                f"  {_region_name(result, p.loop_x)} -> "
                f"{_region_name(result, p.loop_y)}: "
                f"{interpret_pipeline(p.a, p.b, p.efficiency)}"
            )
        parts.append("")

    wavefronts = getattr(result, "wavefronts", [])
    if wavefronts:
        rows = []
        for w in wavefronts:
            rows.append(
                [
                    _region_name(result, w.loop_x),
                    _region_name(result, w.loop_y),
                    _region_name(result, w.carrier) if w.carrier is not None else "-",
                    w.direction,
                    w.a,
                    w.b,
                    w.r2,
                ]
            )
        parts.append(
            format_table(
                ["loop x", "loop y", "carrier", "direction", "a", "b", "r2"],
                rows,
                title="Wavefront / skewed-pipeline shapes",
            )
        )
        for w in wavefronts:
            if w.is_carried:
                parts.append(
                    f"  {_region_name(result, w.carrier)} iterations can overlap "
                    f"diagonally: {_region_name(result, w.loop_y)} of step t "
                    f"needs {_region_name(result, w.loop_x)} of step t-1 only "
                    f"up to iteration {w.a:.2f}*i{w.b:+.2f}"
                )
            else:
                parts.append(
                    f"  skewed pipeline: iteration i of "
                    f"{_region_name(result, w.loop_y)} waits only for iteration "
                    f"{w.a:.2f}*i{w.b:+.2f} of {_region_name(result, w.loop_x)}"
                )
        parts.append("")

    task = result.best_task_parallelism()
    if task is not None:
        parts.append(
            f"Task parallelism in {_region_name(result, task.region)}: "
            f"estimated speedup {task.estimated_speedup:.2f} "
            f"(single-step {task.single_step_speedup:.2f})"
        )
        for cu in task.cus:
            mark = task.marks.get(cu.cu_id, "?")
            parts.append(f"  {cu.label:6s} {mark:8s} {cu.describe()}")
        for b1, b2 in task.parallel_barriers:
            parts.append(f"  barriers CU_{b1} and CU_{b2} can run in parallel")
        parts.append("")

    for gd in result.geometric:
        loop_names = ", ".join(
            f"{_region_name(result, r)}={lc.classification.value}"
            for r, lc in sorted(gd.analyzed_loops.items())
        )
        parts.append(
            f"Geometric decomposition candidate: {gd.function}() "
            f"[loops: {loop_names}]"
        )
    if result.geometric:
        parts.append("")

    for loop, candidates in sorted(result.reductions.items()):
        for c in candidates:
            op = c.operator or "?"
            parts.append(
                f"Reduction in {_region_name(result, loop)}: variable "
                f"{c.var!r} at line {c.line} (operator {op})"
            )
    if result.reductions:
        parts.append("")

    if include_trace and result.trace is not None:
        trace_text = trace_report(result)
        if trace_text:
            parts.append(trace_text)
            parts.append("")

    if include_source:
        parts.append("Annotated source:")
        parts.append(annotated_source(result))
    return "\n".join(parts)
