"""Loop classification: do-all / reduction / sequential.

A loop is **do-all** when it has no loop-carried dependences after

* excluding its induction variables (and those of nested loops), and
* excluding WAR/WAW dependences on privatizable variables — variables the
  profiler proved are always written before read within an iteration *and*
  that do not escape the enclosing function (locals and by-value
  parameters).  Escaping memory (globals, array parameters, by-reference
  parameters) is observable after the loop, so colliding writes from
  different iterations are real conflicts even when never read inside —
  the final value depends on iteration order.

A loop is a **reduction** loop when its only remaining carried RAW
dependences are reduction candidates per Algorithm 3 (and the matching
WAR/WAW on the reduction variables are excused).

Everything else is **sequential**.
"""

from __future__ import annotations

from repro.lang.ast_nodes import Program
from repro.patterns.framework import (
    AnalysisContext,
    AnalysisResult,
    Detector,
    Evidence,
    StageTrace,
)
from repro.patterns.reduction import detect_reductions
from repro.patterns.result import LoopClass, LoopClassification
from repro.profiling.model import RAW, Profile


def _induction_vars(program: Program, loop: int) -> set[str]:
    names: set[str] = set()
    region = program.regions.get(loop)
    if region is None or region.node is None:
        return names
    names |= set(getattr(region.node, "induction_vars", frozenset()))
    for other in program.regions.values():
        if other.kind != "loop" or other.node is None:
            continue
        cursor = other
        while cursor is not None and cursor.parent is not None:
            if cursor.parent == loop:
                names |= set(other.node.induction_vars)
                break
            cursor = program.regions.get(cursor.parent)
    return names


def _non_escaping_names(program: Program, loop: int) -> set[str]:
    """Names that cannot be observed outside the loop's function: declared
    locals and by-value scalar parameters.  Only these may be privatized."""
    from repro.lang.ast_nodes import VarDecl, walk_stmts

    region = program.regions.get(loop)
    if region is None or not program.has_function(region.function):
        return set()
    func = program.function(region.function)
    names = {
        p.name for p in func.params if not p.is_array and not p.by_ref
    }
    for stmt in walk_stmts(func.body):
        if isinstance(stmt, VarDecl):
            names.add(stmt.name)
    return names


def classify_loop(
    program: Program,
    profile: Profile,
    loop: int,
    use_privatization: bool = True,
) -> LoopClass:
    """Classify one loop region from the profile's carried dependences.

    *use_privatization* exists for ablation: without it, WAR/WAW on
    written-before-read scalars (every loop-local temporary) block do-all
    classification, as a naive dependence test would conclude.
    """
    induction = _induction_vars(program, loop)
    if use_privatization:
        local = _non_escaping_names(program, loop)
        privatizable = {
            var
            for (lp, var) in profile.loop_accessed
            if lp == loop and (lp, var) not in profile.read_first and var in local
        }
    else:
        privatizable = set()

    blocking: set[str] = set()
    carried_raw: set[str] = set()
    for dep in profile.deps:
        if dep.carrier != loop:
            continue
        if dep.var in induction:
            continue
        if dep.kind == RAW:
            carried_raw.add(dep.var)
            blocking.add(dep.var)
        else:  # WAR / WAW
            if dep.var in privatizable:
                continue
            blocking.add(dep.var)

    if not blocking:
        return LoopClass(
            region=loop,
            classification=LoopClassification.DOALL,
            privatizable=privatizable,
        )

    reductions = detect_reductions(program, profile, loop)
    reduction_vars = {r.var for r in reductions}
    non_reduction_blockers = blocking - reduction_vars
    if carried_raw and carried_raw <= reduction_vars and not non_reduction_blockers:
        return LoopClass(
            region=loop,
            classification=LoopClassification.REDUCTION,
            blocking_vars=blocking,
            privatizable=privatizable,
            reductions=reductions,
        )
    return LoopClass(
        region=loop,
        classification=LoopClassification.SEQUENTIAL,
        blocking_vars=blocking,
        privatizable=privatizable,
        reductions=reductions,
    )


class LoopClassesDetector(Detector):
    """Stage 1: classify every executed loop (cheap, quoted everywhere)."""

    name = "loop-classes"
    stage = "loop-classes"

    def run(
        self, ctx: AnalysisContext, result: AnalysisResult, trace: StageTrace
    ) -> list[Evidence]:
        evidence: list[Evidence] = []
        hot = ctx.hotspot_regions
        for loop_region in ctx.profile.loop_trips:
            lc = ctx.loop_class(loop_region)
            result.loop_classes[loop_region] = lc
            trace.count("loops")
            trace.count(lc.classification.value)
            if loop_region in hot:
                evidence.append(
                    Evidence(
                        detector=self.name,
                        kind="loop",
                        regions=(loop_region,),
                        status="accepted" if lc.parallelizable else "rejected",
                        reason=f"classified-{lc.classification.value}",
                        detail=(
                            f"blocking={sorted(lc.blocking_vars)}"
                            if lc.blocking_vars
                            else ""
                        ),
                    )
                )
        return evidence
