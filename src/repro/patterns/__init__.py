"""Parallel pattern detectors — the paper's core contribution.

Four algorithm-structure patterns plus fusion are detected on top of the
profiling substrate:

* :mod:`repro.patterns.pipeline` — multi-loop pipeline via linear regression
  over dependent iteration pairs (Section III-A, Eq. 1-2, Tables II/IV);
* :mod:`repro.patterns.fusion` — loop fusion as the ``a=1, b=0`` do-all
  special case (Section III-A);
* :mod:`repro.patterns.tasks` — task parallelism via BFS fork/worker/barrier
  classification of the CU graph (Section III-B, Algorithm 1, Table V);
* :mod:`repro.patterns.geometric` — geometric decomposition of functions
  whose loops are all do-all/reduction (Section III-C, Algorithm 2);
* :mod:`repro.patterns.reduction` — dynamic reduction detection
  (Section III-D, Algorithm 3, Table VI).

:func:`repro.patterns.engine.analyze` runs everything over the hotspots of a
profiled program and :func:`repro.patterns.engine.summarize_patterns`
produces the Table III "Detected Pattern" summary.
"""

from repro.patterns.result import (
    SUPPORTING_STRUCTURE,
    FusionCandidate,
    GeometricDecomposition,
    LoopClass,
    LoopClassification,
    MultiLoopPipeline,
    ReductionCandidate,
    TaskParallelism,
)
from repro.patterns.regression import RegressionFit, efficiency_factor, fit_iteration_pairs
from repro.patterns.doall import classify_loop
from repro.patterns.reduction import detect_reductions, infer_operator
from repro.patterns.pipeline import detect_multiloop_pipelines, pipeline_chains
from repro.patterns.fusion import detect_fusion
from repro.patterns.tasks import detect_task_parallelism
from repro.patterns.geometric import detect_geometric_decomposition
from repro.patterns.engine import AnalysisResult, analyze, summarize_patterns
from repro.patterns.framework import (
    AnalysisContext,
    AnalysisTrace,
    Detector,
    DetectorRegistry,
    Evidence,
    StageTrace,
    default_registry,
    run_detectors,
)
from repro.patterns.schema import (
    SCHEMA_VERSION,
    analysis_from_dict,
    analysis_from_json,
    analysis_to_dict,
    analysis_to_json,
)
from repro.patterns.ranking import PatternOption, rank_patterns
from repro.patterns.intra_pipeline import IntraLoopPipeline, detect_intra_loop_pipeline

__all__ = [
    "SUPPORTING_STRUCTURE",
    "FusionCandidate",
    "GeometricDecomposition",
    "LoopClass",
    "LoopClassification",
    "MultiLoopPipeline",
    "ReductionCandidate",
    "TaskParallelism",
    "RegressionFit",
    "efficiency_factor",
    "fit_iteration_pairs",
    "classify_loop",
    "detect_reductions",
    "infer_operator",
    "detect_multiloop_pipelines",
    "pipeline_chains",
    "detect_fusion",
    "detect_task_parallelism",
    "detect_geometric_decomposition",
    "AnalysisResult",
    "analyze",
    "summarize_patterns",
    "AnalysisContext",
    "AnalysisTrace",
    "Detector",
    "DetectorRegistry",
    "Evidence",
    "StageTrace",
    "default_registry",
    "run_detectors",
    "SCHEMA_VERSION",
    "analysis_to_dict",
    "analysis_from_dict",
    "analysis_to_json",
    "analysis_from_json",
    "PatternOption",
    "rank_patterns",
    "IntraLoopPipeline",
    "detect_intra_loop_pipeline",
]
