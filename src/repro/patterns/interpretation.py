"""Human-readable interpretation of pipeline coefficients (Table II)."""

from __future__ import annotations

_TOL = 1e-9


def interpret_a(a: float, tol: float = 1e-6) -> str:
    """Table II's description of coefficient ``a``."""
    if abs(a - 1.0) <= tol:
        return "one iteration of loop y depends exactly on one iteration of loop x"
    if a < 1.0:
        if a <= 0.0:
            return "iterations of loop y do not scale with iterations of loop x"
        per = 1.0 / a
        return (
            f"1 iteration of loop y depends on {per:.3g} iterations of loop x"
        )
    return (
        f"{a:.3g} iterations of loop y depend on 1 iteration of loop x, so "
        f"{a:.3g} iterations of loop y can be executed after 1 iteration of loop x"
    )


def interpret_b(b: float, tol: float = 1e-6) -> str:
    """Table II's description of coefficient ``b``."""
    if abs(b) <= tol:
        return "all iterations of loop y depend on all iterations of loop x"
    if b < 0.0:
        return (
            f"no iteration of loop y depends on the first {abs(b):.3g} "
            f"iterations of loop x"
        )
    return (
        f"the first {b:.3g} iterations of loop y do not depend on any "
        f"iteration of loop x"
    )


def interpret_efficiency(e: float) -> str:
    """Section III-A's reading of the efficiency factor."""
    if e >= 1.5:
        return (
            "both loops can run almost in parallel with minimal "
            "synchronization between their iterations"
        )
    if e >= 0.75:
        return "an efficient multi-loop pipeline"
    if e >= 0.25:
        return "a pipeline with substantial waiting between the stages"
    return (
        "an inefficient pipeline: loop y waits for almost all iterations "
        "of loop x"
    )


def interpret_pipeline(a: float, b: float, e: float) -> str:
    """One-paragraph summary combining a, b, and e."""
    return f"{interpret_a(a)}; {interpret_b(b)}; overall {interpret_efficiency(e)}."
