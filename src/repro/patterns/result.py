"""Result types for pattern detection, and the Table I mapping."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cu.model import CU
from repro.graphs.digraph import DiGraph

#: Table I — algorithm structure patterns mapped to their best supporting
#: structures.
SUPPORTING_STRUCTURE: dict[str, str] = {
    "Task parallelism": "Master/worker",
    "Geometric decomposition": "SPMD",
    "Reduction": "SPMD",
    "Multi-loop pipeline": "SPMD",
}

#: Table I — the concurrency type each pattern exploits.
PATTERN_TYPE: dict[str, str] = {
    "Task parallelism": "Task",
    "Geometric decomposition": "Data",
    "Reduction": "Data",
    "Multi-loop pipeline": "Flow of data",
}


class LoopClassification(enum.Enum):
    """How a loop's iterations relate."""

    DOALL = "do-all"
    REDUCTION = "reduction"
    SEQUENTIAL = "sequential"


@dataclass
class LoopClass:
    """Classification of one loop region."""

    region: int
    classification: LoopClassification
    #: carried dependences that block do-all, after induction/privatization
    #: filtering (empty for DOALL; only reduction-pattern ones for REDUCTION)
    blocking_vars: set[str] = field(default_factory=set)
    #: variables proven privatizable (never read before written per iteration)
    privatizable: set[str] = field(default_factory=set)
    reductions: list["ReductionCandidate"] = field(default_factory=list)

    @property
    def is_doall(self) -> bool:
        return self.classification is LoopClassification.DOALL

    @property
    def is_reduction(self) -> bool:
        return self.classification is LoopClassification.REDUCTION

    @property
    def parallelizable(self) -> bool:
        return self.classification is not LoopClassification.SEQUENTIAL


@dataclass
class ReductionCandidate:
    """One reduction opportunity (Algorithm 3 output)."""

    loop: int
    var: str
    line: int
    #: inferred associative operator ('+', '*', 'min', 'max') — an extension
    #: beyond the paper, which leaves operator identification to the user.
    operator: str | None = None


@dataclass
class MultiLoopPipeline:
    """A detected multi-loop pipeline between two loops (Section III-A)."""

    loop_x: int
    loop_y: int
    a: float
    b: float
    efficiency: float
    n_pairs: int
    trips_x: int
    trips_y: int
    stage_x: LoopClass | None = None
    stage_y: LoopClass | None = None

    @property
    def is_perfect(self) -> bool:
        """Each i-th iteration of y depends exactly on the i-th of x."""
        return abs(self.a - 1.0) < 1e-9 and abs(self.b) < 1e-9


@dataclass
class WavefrontCandidate:
    """A wavefront / skewed-pipeline shape between two dependent loops.

    ``direction`` is ``'backward'`` when the writer loop lies lexically
    after the reader loop — the dependence is then carried by the common
    enclosing loop ``carrier`` and a wavefront schedule overlaps the
    carrier's iterations along the diagonal — and ``'forward'`` for a
    skewed pipeline (negative intercept: iteration i of loop y waits only
    for iteration ``a·i + b < i`` of loop x).
    """

    loop_x: int
    loop_y: int
    #: region id of the common enclosing loop carrying a backward
    #: dependence; ``None`` for forward (skewed-pipeline) shapes
    carrier: int | None
    a: float
    b: float
    r2: float
    n_pairs: int
    direction: str  # 'backward' | 'forward'

    @property
    def is_carried(self) -> bool:
        return self.direction == "backward"


@dataclass
class FusionCandidate:
    """Two do-all loops fusable into a single do-all loop."""

    loop_x: int
    loop_y: int
    pipeline: MultiLoopPipeline


@dataclass
class TaskParallelism:
    """Output of Algorithm 1 on one region's CU graph (Section III-B)."""

    region: int
    cus: list[CU]
    graph: DiGraph
    #: cu_id -> 'fork' | 'worker' | 'barrier'
    marks: dict[int, str]
    #: barrier cu_id -> the worker/barrier cu_ids it waits on
    barrier_inputs: dict[int, list[int]]
    #: pairs of barriers that may run in parallel (no path either way)
    parallel_barriers: list[tuple[int, int]]
    total_instructions: int
    critical_path_instructions: int
    critical_path: list[int] = field(default_factory=list)
    #: a heaviest antichain of the CU graph: CUs with no path between any
    #: two of them — the tasks that can actually run concurrently.  This
    #: covers both Algorithm 1's workers and the independent-forks case
    #: (mvt's two loops, fdtd-2d's three field updates).
    concurrent_tasks: list[int] = field(default_factory=list)
    #: dynamic instruction weight per CU
    weights: dict[int, float] = field(default_factory=dict)

    def significant_tasks(self, min_share: float = 0.08) -> list[int]:
        """Concurrent tasks carrying at least *min_share* of the region's
        CU weight — the grain filter that keeps statement-level
        "parallelism" inside tiny loop bodies from being reported."""
        total = sum(self.weights.values())
        if total <= 0:
            return []
        return [
            cu
            for cu in self.concurrent_tasks
            if self.weights.get(cu, 0.0) >= min_share * total
        ]
    #: conservative variant of the metric that, like the paper's tool, does
    #: not unroll recursion: worker subtrees are opaque single steps.
    single_step_total: int = 0
    single_step_cp: int = 0

    @property
    def estimated_speedup(self) -> float:
        """Total instructions / critical-path instructions (work over span)."""
        if self.critical_path_instructions <= 0:
            return 1.0
        return self.total_instructions / self.critical_path_instructions

    @property
    def single_step_speedup(self) -> float:
        """The paper's one-recursive-step estimate (Section IV-B notes it
        underestimates recursive benchmarks like fib)."""
        if self.single_step_cp <= 0:
            return self.estimated_speedup
        return self.single_step_total / self.single_step_cp

    def of_kind(self, mark: str) -> list[int]:
        return sorted(cu for cu, m in self.marks.items() if m == mark)

    @property
    def forks(self) -> list[int]:
        return self.of_kind("fork")

    @property
    def workers(self) -> list[int]:
        return self.of_kind("worker")

    @property
    def barriers(self) -> list[int]:
        return self.of_kind("barrier")


@dataclass
class GeometricDecomposition:
    """A function suitable for geometric decomposition (Section III-C)."""

    region: int
    function: str
    #: loop region -> classification, for every loop Algorithm 2 examined
    analyzed_loops: dict[int, LoopClass]
    #: directly-called functions whose loops were also examined
    called_functions: list[str] = field(default_factory=list)

    @property
    def has_reduction_loops(self) -> bool:
        return any(lc.is_reduction for lc in self.analyzed_loops.values())
