"""Wavefront / skewed-pipeline detection over doubly-nested dependence shapes.

The profiler's ``(i_x, i_y)`` iteration pairs carry more information than the
multi-loop pipeline detector consumes.  Two shapes in particular are left on
the table:

* **Backward pairs** — the writer loop lies lexically *after* the reader
  loop, so the dependence is really carried by a common enclosing loop
  (fdtd-2d's ``hz(t-1) -> ey(t)``).  The pipeline detector skips these by
  design; here they become wavefront candidates: when the carried
  dependence is an affine function of the inner iteration (``i_y ≈ a·i_x +
  b`` with a tight fit), successive activations of the enclosing loop can
  overlap along the diagonal — the classic wavefront schedule over the
  ``(carrier, inner)`` iteration space.

* **Skewed forward pairs** — a forward dependence whose fitted line has a
  *negative* intercept (reg_detect's ``a = 1, b = -1``, the paper's Table
  IV).  Iteration ``i`` of loop y needs only iterations up to ``i + b`` of
  loop x, so the two loops overlap in a skewed (software-pipelined)
  schedule rather than a plain two-stage pipeline.

Both shapes gate on the regression's goodness of fit: a wavefront schedule
is only sound when the dependence distance is actually affine, so the
deciding threshold is :data:`MIN_WAVEFRONT_R2`.  Accepted candidates land in
``AnalysisResult.wavefronts`` — deliberately *not* in the Table III primary
label, which the paper defines over its six patterns — and serialize as a
tolerated schema extension (the key appears only when non-empty).
"""

from __future__ import annotations

from repro.lang.ast_nodes import Program
from repro.patterns.framework import (
    AnalysisContext,
    AnalysisResult,
    Detector,
    Evidence,
    StageTrace,
)
from repro.patterns.regression import fit_iteration_pairs
from repro.patterns.result import WavefrontCandidate

#: A wavefront schedule assumes the carried dependence distance is affine in
#: the iteration number; below this goodness-of-fit the ``(i_x, i_y)`` cloud
#: is not a line and skewing would violate real dependences.
MIN_WAVEFRONT_R2 = 0.8


def _loop_ancestors(program: Program, region: int) -> list[int]:
    """Enclosing loop region_ids of *region*, innermost first."""
    out: list[int] = []
    reg = program.regions.get(region)
    seen = set()
    while reg is not None and reg.parent is not None and reg.parent not in seen:
        seen.add(reg.parent)
        parent = program.regions.get(reg.parent)
        if parent is None:
            break
        if parent.kind == "loop":
            out.append(parent.region_id)
        reg = parent
    return out


def common_carrier(program: Program, loop_x: int, loop_y: int) -> int | None:
    """The innermost loop enclosing both *loop_x* and *loop_y*, if any.

    A backward dependence between sibling loops is carried by exactly this
    loop — its iterations are what a wavefront schedule would overlap.
    """
    ancestors_y = set(_loop_ancestors(program, loop_y))
    for region in _loop_ancestors(program, loop_x):
        if region in ancestors_y:
            return region
    return None


def detect_wavefronts(
    program: Program,
    profile,
    hotspots: set[int] | None = None,
    min_pairs: int = 3,
) -> tuple[list[WavefrontCandidate], list[Evidence]]:
    """Classify every dependent loop pair as wavefront / skewed pipeline.

    Returns the accepted candidates plus the full evidence stream
    (acceptances and rejections, each naming the deciding gate).
    """
    candidates: list[WavefrontCandidate] = []
    evidence: list[Evidence] = []
    for (loop_x, loop_y), pairs in sorted(profile.pairs.items()):
        if hotspots is not None and (loop_x not in hotspots or loop_y not in hotspots):
            continue
        if len(pairs) < min_pairs:
            continue
        reg_x = program.regions.get(loop_x)
        reg_y = program.regions.get(loop_y)
        if reg_x is None or reg_y is None:
            continue
        backward = reg_x.line > reg_y.line
        direction = "backward" if backward else "forward"
        regions = (loop_x, loop_y)

        def reject(reason: str, threshold=None, tval=None, obs=None, detail=""):
            evidence.append(
                Evidence(
                    detector="wavefronts",
                    kind="wavefront",
                    regions=regions,
                    status="rejected",
                    reason=reason,
                    threshold=threshold,
                    threshold_value=tval,
                    observed=obs,
                    detail=detail or f"direction={direction}",
                )
            )

        carrier = common_carrier(program, loop_x, loop_y)
        if backward and carrier is None:
            # a backward dependence with no enclosing loop to carry it has
            # no iteration space to skew over
            reject("no-common-carrier")
            continue
        fit = fit_iteration_pairs(pairs)
        if fit.a <= 0.0:
            # the dependence distance shrinks (or is constant): later inner
            # iterations need *earlier* producer work, which a diagonal
            # schedule cannot exploit
            reject(
                "non-positive-slope",
                threshold="MIN_WAVEFRONT_SLOPE",
                tval=0.0,
                obs=fit.a,
                detail=f"a={fit.a:.3f}, direction={direction}",
            )
            continue
        if not backward and fit.b >= 0.0:
            # a forward dependence without a negative skew offset is a plain
            # pipeline (ludcmp's a=1, b=0) — the pipeline detector's case
            reject(
                "no-skew-offset",
                threshold="MAX_SKEW_INTERCEPT",
                tval=0.0,
                obs=fit.b,
                detail=f"b={fit.b:.3f} >= 0: plain pipeline, not skewed",
            )
            continue
        if fit.r2 < MIN_WAVEFRONT_R2:
            reject(
                "fit-below-threshold",
                threshold="MIN_WAVEFRONT_R2",
                tval=MIN_WAVEFRONT_R2,
                obs=fit.r2,
                detail=f"a={fit.a:.3f}, b={fit.b:.3f}, direction={direction}",
            )
            continue
        candidates.append(
            WavefrontCandidate(
                loop_x=loop_x,
                loop_y=loop_y,
                carrier=carrier if backward else None,
                a=fit.a,
                b=fit.b,
                r2=fit.r2,
                n_pairs=fit.n,
                direction=direction,
            )
        )
        evidence.append(
            Evidence(
                detector="wavefronts",
                kind="wavefront",
                regions=regions,
                status="accepted",
                reason=(
                    "carried-affine-dependence"
                    if backward
                    else "skewed-forward-dependence"
                ),
                threshold="MIN_WAVEFRONT_R2",
                threshold_value=MIN_WAVEFRONT_R2,
                observed=fit.r2,
                detail=(
                    f"a={fit.a:.3f}, b={fit.b:.3f}, direction={direction}"
                    + (f", carrier={carrier}" if backward else "")
                ),
            )
        )
    candidates.sort(key=lambda c: (c.loop_x, c.loop_y))
    return candidates, evidence


class WavefrontDetector(Detector):
    """Stage 7: wavefront / skewed-pipeline shapes over the same iteration
    pairs the pipeline stage fits, gated on :data:`MIN_WAVEFRONT_R2`.

    Runs after ``pipelines`` so the evidence stream reads forward→skewed in
    dependence order; results stay out of the Table III primary label."""

    name = "wavefronts"
    stage = "wavefronts"
    requires = ("pipelines",)

    def run(
        self, ctx: AnalysisContext, result: AnalysisResult, trace: StageTrace
    ) -> list[Evidence]:
        candidates, evidence = detect_wavefronts(
            ctx.program,
            ctx.profile,
            hotspots=ctx.hotspot_regions,
            min_pairs=ctx.min_pairs,
        )
        result.wavefronts = candidates
        trace.counters["candidates"] = len(evidence)
        trace.counters["accepted"] = len(candidates)
        trace.counters["rejected"] = len(evidence) - len(candidates)
        return evidence
