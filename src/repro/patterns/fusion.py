"""Loop fusion detection (Section III-A, "Loop Fusion").

A detected multi-loop pipeline is a fusion candidate when

* both loops are do-all loops, and
* the regression coefficients are exactly ``a = 1`` and ``b = 0`` (hence
  ``e = 1``):

the fused loop then carries no dependences and parallelizes with do-all,
which coarsens granularity and removes one barrier.  Unlike a compiler's
static fusion, the loops may be lexically far apart — the evidence is
dynamic.
"""

from __future__ import annotations

from repro.patterns.framework import (
    AnalysisContext,
    AnalysisResult,
    Detector,
    Evidence,
    StageTrace,
)
from repro.patterns.result import FusionCandidate, MultiLoopPipeline

_TOL = 1e-9


def detect_fusion(pipelines: list[MultiLoopPipeline]) -> list[FusionCandidate]:
    """Filter pipeline reports down to fusion candidates.

    Beyond the paper's two conditions, loop *y* must depend on *no other
    loop*: in 3mm, G = E*F has a perfect one-to-one relation with the E
    nest but also needs *all* of the F nest — fusing G into E would execute
    G's iterations before F finished.  The single-source requirement keeps
    fusion semantics-preserving.
    """
    sources: dict[int, set[int]] = {}
    for p in pipelines:
        sources.setdefault(p.loop_y, set()).add(p.loop_x)
    out: list[FusionCandidate] = []
    for p in pipelines:
        if p.stage_x is None or p.stage_y is None:
            continue
        if not (p.stage_x.is_doall and p.stage_y.is_doall):
            continue
        if abs(p.a - 1.0) > _TOL or abs(p.b) > _TOL:
            continue
        if sources.get(p.loop_y, set()) != {p.loop_x}:
            continue
        out.append(FusionCandidate(loop_x=p.loop_x, loop_y=p.loop_y, pipeline=p))
    return out


class FusionDetector(Detector):
    """Stage 3: the ``a=1, b=0`` do-all special case on top of the
    pipeline stage's reports."""

    name = "fusion"
    stage = "fusion"
    requires = ("pipelines",)

    def run(
        self, ctx: AnalysisContext, result: AnalysisResult, trace: StageTrace
    ) -> list[Evidence]:
        result.fusions = detect_fusion(result.pipelines)
        trace.counters["candidates"] = len(result.pipelines)
        trace.counters["fusable"] = len(result.fusions)
        return [
            Evidence(
                detector=self.name,
                kind="fusion",
                regions=(f.loop_x, f.loop_y),
                status="accepted",
                reason="perfect-doall-pipeline",
                threshold="A_EQ_1_B_EQ_0",
                threshold_value=_TOL,
                observed=abs(f.pipeline.a - 1.0) + abs(f.pipeline.b),
            )
            for f in result.fusions
        ]
