"""The detection engine: run every detector over a program's hotspots.

``analyze`` profiles the program (optionally with several inputs, merged)
and applies the Section III detectors to the hotspot regions, mirroring the
paper's pipeline: hotspots from the PET → CU graphs → pattern detectors.

``summarize_patterns`` condenses an :class:`AnalysisResult` into the
"Detected Pattern" label of Table III, using the same precedence the paper's
evaluation section exhibits (fusion ≻ multi-loop pipeline ≻ task parallelism
≻ geometric decomposition ≻ reduction ≻ do-all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.profiling.cache import ProfileCache

from repro.lang.ast_nodes import Program
from repro.patterns.doall import classify_loop
from repro.patterns.fusion import detect_fusion
from repro.patterns.geometric import detect_geometric_decomposition
from repro.patterns.pipeline import detect_multiloop_pipelines
from repro.patterns.reduction import detect_reductions
from repro.patterns.result import (
    FusionCandidate,
    GeometricDecomposition,
    LoopClass,
    MultiLoopPipeline,
    ReductionCandidate,
    TaskParallelism,
)
from repro.patterns.tasks import detect_task_parallelism
from repro.profiling.hotspots import DEFAULT_THRESHOLD, Hotspot, hotspot_regions
from repro.profiling.model import Profile
from repro.profiling.runner import profile_runs

#: A task-parallelism result is "interesting" when the region actually
#: splits into parallel work: at least this estimated speedup.
MIN_TASK_SPEEDUP = 1.3

#: A pipeline below this efficiency factor makes loop y wait for most of
#: loop x — not worth reporting as the program's primary pattern.
MIN_PIPELINE_EFFICIENCY = 0.5

#: Minimum instructions per region activation (per iteration for loops)
#: for task parallelism to be worth forking — statement-level concurrency
#: inside an innermost loop body (bicg's two accumulations) is below any
#: sensible task grain.  Recursive regions are exempt: their tasks are
#: whole subtrees.
MIN_TASK_GRAIN = 300.0


@dataclass
class AnalysisResult:
    """Everything the detectors found for one program."""

    program: Program
    profile: Profile
    hotspots: list[Hotspot]
    loop_classes: dict[int, LoopClass] = field(default_factory=dict)
    pipelines: list[MultiLoopPipeline] = field(default_factory=list)
    fusions: list[FusionCandidate] = field(default_factory=list)
    tasks: dict[int, TaskParallelism] = field(default_factory=dict)
    geometric: list[GeometricDecomposition] = field(default_factory=list)
    reductions: dict[int, list[ReductionCandidate]] = field(default_factory=dict)

    @property
    def hotspot_regions(self) -> set[int]:
        return {h.region for h in self.hotspots}

    def clean_pipelines(self) -> list[MultiLoopPipeline]:
        """Pipelines implementable as a two-stage schedule: loop y depends
        on no loop other than x, and the efficiency factor clears
        :data:`MIN_PIPELINE_EFFICIENCY`."""
        sources: dict[int, set[int]] = {}
        for p in self.pipelines:
            sources.setdefault(p.loop_y, set()).add(p.loop_x)
        return [
            p
            for p in self.pipelines
            if sources.get(p.loop_y) == {p.loop_x}
            and p.efficiency >= MIN_PIPELINE_EFFICIENCY
        ]

    def best_task_parallelism(self) -> TaskParallelism | None:
        """The most promising task-parallel hotspot, if any.

        A region is interesting when at least two CUs can actually run
        concurrently (an antichain of the CU graph) and the work/span ratio
        clears :data:`MIN_TASK_SPEEDUP`.
        """
        best: TaskParallelism | None = None
        for tp in self.tasks.values():
            if tp.estimated_speedup < MIN_TASK_SPEEDUP:
                continue
            if len(tp.significant_tasks()) < 2:
                continue
            if not self._task_grain_ok(tp):
                continue
            if best is None or tp.estimated_speedup > best.estimated_speedup:
                best = tp
        return best

    def _task_grain_ok(self, tp: TaskParallelism) -> bool:
        reg = self.program.regions.get(tp.region)
        if reg is None:
            return False
        if reg.kind == "function":
            from repro.lang.analysis import is_recursive

            if self.program.has_function(reg.function) and is_recursive(
                self.program.function(reg.function), self.program
            ):
                return True  # tasks are whole recursive subtrees
            invocations = sum(
                n.invocations for n in self.profile.pet.walk() if n.region == tp.region
            ) if self.profile.pet else 1
            grain = self.profile.region_cost(tp.region) / max(1, invocations)
        else:
            trips = self.profile.trip_count(tp.region)
            grain = self.profile.region_cost(tp.region) / max(1, trips)
        return grain >= MIN_TASK_GRAIN


def analyze(
    program: Program,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    hotspot_threshold: float = DEFAULT_THRESHOLD,
    min_pairs: int = 3,
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
    cache: "ProfileCache | None" = None,
) -> AnalysisResult:
    """Profile ``entry`` with each argument set and run all detectors.

    Pass a :class:`repro.profiling.cache.ProfileCache` to skip the
    instrumented run entirely when an identical (source, inputs, config)
    profile is already on disk.
    """
    if cache is not None:
        from repro.profiling.cache import cached_profile_runs

        profile, _ = cached_profile_runs(
            program, entry, arg_sets,
            record_calltree=record_calltree, max_cost=max_cost, cache=cache,
        )
    else:
        profile = profile_runs(
            program, entry, arg_sets, record_calltree=record_calltree, max_cost=max_cost
        )
    return analyze_profile(
        program, profile, hotspot_threshold=hotspot_threshold, min_pairs=min_pairs
    )


def analyze_profile(
    program: Program,
    profile: Profile,
    hotspot_threshold: float = DEFAULT_THRESHOLD,
    min_pairs: int = 3,
) -> AnalysisResult:
    """Run all detectors over an existing profile."""
    hotspots = hotspot_regions(profile, program, threshold=hotspot_threshold)
    result = AnalysisResult(program=program, profile=profile, hotspots=hotspots)
    hotspot_ids = result.hotspot_regions

    # Loop classification for every executed loop (cheap, reused everywhere).
    for loop_region in profile.loop_trips:
        result.loop_classes[loop_region] = classify_loop(program, profile, loop_region)

    # Multi-loop pipelines between hotspot loops, and fusion on top.
    result.pipelines = detect_multiloop_pipelines(
        program, profile, hotspots=hotspot_ids, min_pairs=min_pairs
    )
    result.fusions = detect_fusion(result.pipelines)

    # Task parallelism per hotspot region.
    for hotspot in hotspots:
        result.tasks[hotspot.region] = detect_task_parallelism(
            program, profile, hotspot.region
        )

    # Geometric decomposition for hotspot functions.
    for hotspot in hotspots:
        if hotspot.kind != "function":
            continue
        gd = detect_geometric_decomposition(program, profile, hotspot.region)
        if gd is not None:
            result.geometric.append(gd)

    # Reductions in hotspot loops (Algorithm 3).
    for hotspot in hotspots:
        if hotspot.kind != "loop":
            continue
        candidates = detect_reductions(program, profile, hotspot.region)
        if candidates:
            result.reductions[hotspot.region] = candidates

    return result


def summarize_patterns(result: AnalysisResult) -> str:
    """The Table III "Detected Pattern" label for an analysis result."""
    if result.fusions:
        return "Fusion"
    if result.clean_pipelines():
        return "Multi-loop pipeline"

    task = result.best_task_parallelism()
    if task is not None:
        workers_doall = _workers_are_doall_loops(result, task)
        return "Task parallelism + Do-all" if workers_doall else "Task parallelism"

    if result.geometric:
        gd = result.geometric[0]
        hot = result.hotspot_regions
        regions = result.program.regions
        # kmeans-style: a hotspot reduction loop anywhere inside the GD
        # function earns the "+ Reduction" suffix (Section IV-C/IV-D).
        has_hot_reduction = any(
            lc.is_reduction
            and region in hot
            and region in regions
            and regions[region].function == gd.function
            for region, lc in result.loop_classes.items()
        )
        if has_hot_reduction:
            return "Geometric decomposition + Reduction"
        return "Geometric decomposition"

    if result.reductions:
        return "Reduction"

    hot = result.hotspot_regions
    if any(lc.is_doall for region, lc in result.loop_classes.items() if region in hot):
        return "Do-all"
    return "None"


def primary_pattern_regions(result: AnalysisResult) -> list[int]:
    """The region(s) in which the primary pattern was detected."""
    label = summarize_patterns(result)
    if label == "Fusion" and result.fusions:
        f = result.fusions[0]
        return [f.loop_x, f.loop_y]
    if label == "Multi-loop pipeline":
        clean = result.clean_pipelines()
        if clean:
            return [clean[0].loop_x, clean[0].loop_y]
    if label.startswith("Task parallelism"):
        task = result.best_task_parallelism()
        if task is not None:
            return [task.region]
    if label.startswith("Geometric decomposition") and result.geometric:
        return [result.geometric[0].region]
    if label == "Reduction" and result.reductions:
        loop = max(result.reductions, key=lambda r: result.profile.region_cost(r))
        return [loop]
    if result.hotspots:
        return [result.hotspots[0].region]
    return []


def primary_pattern_share(result: AnalysisResult) -> float:
    """Fraction of executed instructions inside the primary pattern's
    region(s) — Table III's "Exec Inst % in Hotspot" column."""
    regions = primary_pattern_regions(result)
    if not regions or result.profile.total_cost <= 0:
        return 0.0
    total = sum(result.profile.region_cost(r) for r in set(regions))
    return min(1.0, total / result.profile.total_cost)


def _workers_are_doall_loops(result: AnalysisResult, task: TaskParallelism) -> bool:
    """True when every significant concurrent task is a do-all loop CU."""
    cu_by_id = {cu.cu_id: cu for cu in task.cus}
    workers = task.significant_tasks()
    if not workers:
        return False
    for cu_id in workers:
        cu = cu_by_id[cu_id]
        if cu.kind != "loop":
            return False
        loop_stmt = cu.stmts[0]
        region = getattr(loop_stmt, "region_id", -1)
        lc = result.loop_classes.get(region)
        if lc is None or not lc.is_doall:
            return False
    return True
