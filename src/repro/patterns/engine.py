"""The detection engine: run the detector pipeline over a program's hotspots.

``analyze`` profiles the program (optionally with several inputs, merged)
and applies the Section III detectors to the hotspot regions, mirroring the
paper's pipeline: hotspots from the PET → CU graphs → pattern detectors.
The detectors themselves are pluggable stages resolved from a
:class:`repro.patterns.framework.DetectorRegistry`; pass a custom registry
to ``analyze``/``analyze_profile`` to add, replace, or drop stages.

``summarize_patterns`` condenses an :class:`AnalysisResult` into the
"Detected Pattern" label of Table III, using the same precedence the paper's
evaluation section exhibits (fusion ≻ multi-loop pipeline ≻ task parallelism
≻ geometric decomposition ≻ reduction ≻ do-all).

The thresholds (:data:`MIN_TASK_SPEEDUP`, :data:`MIN_PIPELINE_EFFICIENCY`,
:data:`MIN_TASK_GRAIN`) and :class:`AnalysisResult` itself live in
:mod:`repro.patterns.framework` and are re-exported here for compatibility.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.profiling.cache import ProfileCache

from repro.lang.ast_nodes import Program
from repro.obs.tracing import ensure_tracer
from repro.patterns.framework import (
    MIN_PIPELINE_EFFICIENCY,
    MIN_SIGNIFICANT_TASKS,
    MIN_TASK_GRAIN,
    MIN_TASK_SPEEDUP,
    AnalysisContext,
    AnalysisResult,
    AnalysisTrace,
    DetectorRegistry,
    default_registry,
    run_detectors,
)
from repro.patterns.result import TaskParallelism
from repro.profiling.hotspots import DEFAULT_THRESHOLD, hotspot_regions
from repro.profiling.model import Profile
from repro.profiling.runner import profile_runs

__all__ = [
    "MIN_TASK_SPEEDUP",
    "MIN_PIPELINE_EFFICIENCY",
    "MIN_TASK_GRAIN",
    "MIN_SIGNIFICANT_TASKS",
    "AnalysisContext",
    "AnalysisResult",
    "AnalysisTrace",
    "DetectorRegistry",
    "default_registry",
    "analyze",
    "analyze_profile",
    "summarize_patterns",
    "primary_pattern_regions",
    "primary_pattern_share",
]


def analyze(
    program: Program,
    entry: str,
    arg_sets: Sequence[Sequence[Any]],
    hotspot_threshold: float = DEFAULT_THRESHOLD,
    min_pairs: int = 3,
    record_calltree: bool = True,
    max_cost: int = 500_000_000,
    cache: "ProfileCache | None" = None,
    registry: DetectorRegistry | None = None,
    engine: str = "compiled",
) -> AnalysisResult:
    """Profile ``entry`` with each argument set and run all detectors.

    Pass a :class:`repro.profiling.cache.ProfileCache` to skip the
    instrumented run entirely when an identical (source, inputs, config)
    profile is already on disk, and a :class:`DetectorRegistry` to run a
    non-default detector pipeline.  *engine* picks the execution engine for
    the instrumented runs (``"compiled"`` closures or the ``"tree"``
    reference walker); the produced profiles are identical either way.
    """
    with ensure_tracer() as tracer:
        with tracer.span(
            "profile", cached=cache is not None, runs=len(arg_sets), engine=engine
        ):
            if cache is not None:
                from repro.profiling.cache import cached_profile_runs

                profile, _ = cached_profile_runs(
                    program, entry, arg_sets,
                    record_calltree=record_calltree, max_cost=max_cost, cache=cache,
                    engine=engine,
                )
            else:
                profile = profile_runs(
                    program, entry, arg_sets,
                    record_calltree=record_calltree, max_cost=max_cost,
                    engine=engine,
                )
        return analyze_profile(
            program,
            profile,
            hotspot_threshold=hotspot_threshold,
            min_pairs=min_pairs,
            registry=registry,
        )


def analyze_profile(
    program: Program,
    profile: Profile,
    hotspot_threshold: float = DEFAULT_THRESHOLD,
    min_pairs: int = 3,
    registry: DetectorRegistry | None = None,
) -> AnalysisResult:
    """Run the detector pipeline over an existing profile."""
    hotspots = hotspot_regions(profile, program, threshold=hotspot_threshold)
    ctx = AnalysisContext(
        program=program,
        profile=profile,
        hotspots=hotspots,
        hotspot_threshold=hotspot_threshold,
        min_pairs=min_pairs,
    )
    return run_detectors(ctx, registry)


def summarize_patterns(result: AnalysisResult) -> str:
    """The Table III "Detected Pattern" label for an analysis result."""
    if result.fusions:
        return "Fusion"
    if result.clean_pipelines():
        return "Multi-loop pipeline"

    task = result.best_task_parallelism()
    if task is not None:
        workers_doall = _workers_are_doall_loops(result, task)
        return "Task parallelism + Do-all" if workers_doall else "Task parallelism"

    if result.geometric:
        gd = result.geometric[0]
        hot = result.hotspot_regions
        regions = result.program.regions
        # kmeans-style: a hotspot reduction loop anywhere inside the GD
        # function earns the "+ Reduction" suffix (Section IV-C/IV-D).
        has_hot_reduction = any(
            lc.is_reduction
            and region in hot
            and region in regions
            and regions[region].function == gd.function
            for region, lc in result.loop_classes.items()
        )
        if has_hot_reduction:
            return "Geometric decomposition + Reduction"
        return "Geometric decomposition"

    if result.reductions:
        return "Reduction"

    hot = result.hotspot_regions
    if any(lc.is_doall for region, lc in result.loop_classes.items() if region in hot):
        return "Do-all"
    return "None"


def primary_pattern_regions(result: AnalysisResult) -> list[int]:
    """The region(s) in which the primary pattern was detected."""
    label = summarize_patterns(result)
    if label == "Fusion" and result.fusions:
        f = result.fusions[0]
        return [f.loop_x, f.loop_y]
    if label == "Multi-loop pipeline":
        clean = result.clean_pipelines()
        if clean:
            return [clean[0].loop_x, clean[0].loop_y]
    if label.startswith("Task parallelism"):
        task = result.best_task_parallelism()
        if task is not None:
            return [task.region]
    if label.startswith("Geometric decomposition") and result.geometric:
        return [result.geometric[0].region]
    if label == "Reduction" and result.reductions:
        loop = max(result.reductions, key=lambda r: result.profile.region_cost(r))
        return [loop]
    if result.hotspots:
        return [result.hotspots[0].region]
    return []


def primary_pattern_share(result: AnalysisResult) -> float:
    """Fraction of executed instructions inside the primary pattern's
    region(s) — Table III's "Exec Inst % in Hotspot" column."""
    regions = primary_pattern_regions(result)
    if not regions or result.profile.total_cost <= 0:
        return 0.0
    total = sum(result.profile.region_cost(r) for r in set(regions))
    return min(1.0, total / result.profile.total_cost)


def _workers_are_doall_loops(result: AnalysisResult, task: TaskParallelism) -> bool:
    """True when every significant concurrent task is a do-all loop CU."""
    cu_by_id = {cu.cu_id: cu for cu in task.cus}
    workers = task.significant_tasks()
    if not workers:
        return False
    for cu_id in workers:
        cu = cu_by_id[cu_id]
        if cu.kind != "loop":
            return False
        loop_stmt = cu.stmts[0]
        region = getattr(loop_stmt, "region_id", -1)
        lc = result.loop_classes.get(region)
        if lc is None or not lc.is_doall:
            return False
    return True
