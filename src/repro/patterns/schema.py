"""Versioned JSON schema for analysis results, evidence, and traces.

An :class:`~repro.patterns.framework.AnalysisResult` round-trips through a
JSON-compatible dict carrying a ``schema_version``, so detection output can
be archived, diffed, and consumed by downstream tools (the CLI's ``--json``
mode, the reporting layer, and the parallel orchestrator's outcome records)
without re-running anything.

Serialization is **deterministic**, like
:func:`repro.profiling.serialize.canonical_profile_json`: list orders are
either the result's own deterministic orders or explicitly sorted, dict
keys are sorted at dump time, and equal results produce byte-identical
text — ``analysis_digest`` is therefore a content address.

The program is stored as its MiniC source and re-parsed on load; region and
statement ids are assigned deterministically by the parser, so every id in
the document remains valid.  CU statement lists are stored as ``stmt_id``
references resolved against the re-parsed program.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.cu.model import CU
from repro.graphs.digraph import DiGraph
from repro.obs.tracing import Span
from repro.lang.parser import parse_program
from repro.patterns.framework import (
    AnalysisResult,
    AnalysisTrace,
    Evidence,
    StageTrace,
)
from repro.patterns.result import (
    FusionCandidate,
    GeometricDecomposition,
    LoopClass,
    LoopClassification,
    MultiLoopPipeline,
    ReductionCandidate,
    TaskParallelism,
    WavefrontCandidate,
)
from repro.profiling.hotspots import Hotspot
from repro.profiling.serialize import canonical_json, profile_from_dict, profile_to_dict

#: Version of the analysis document layout.  Bump on any change to the
#: structure below; ``analysis_from_dict`` refuses other versions.
#:
#: The same version stamps the per-benchmark outcome records of
#: :mod:`repro.runtime.parallel` — including the ``"failed": true``
#: failure records a fault-tolerant sweep emits for crashed or timed-out
#: programs.  Failure records are an *extension* document kind (an extra
#: marker key, no change to the analysis layout), so they ride on the
#: existing version; loaders dispatch via
#: :func:`repro.runtime.parallel.outcome_from_dict`.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# component encoders/decoders
# ---------------------------------------------------------------------------


def _hotspot_to_dict(h: Hotspot) -> dict[str, Any]:
    return {
        "region": h.region,
        "kind": h.kind,
        "name": h.name,
        "line": h.line,
        "inclusive_cost": h.inclusive_cost,
        "share": h.share,
        "pet_node_id": h.pet_node_id,
    }


def _hotspot_from_dict(d: dict[str, Any]) -> Hotspot:
    return Hotspot(
        region=d["region"],
        kind=d["kind"],
        name=d["name"],
        line=d["line"],
        inclusive_cost=d["inclusive_cost"],
        share=d["share"],
        pet_node_id=d["pet_node_id"],
    )


def _reduction_to_dict(c: ReductionCandidate) -> dict[str, Any]:
    return {"loop": c.loop, "var": c.var, "line": c.line, "operator": c.operator}


def _reduction_from_dict(d: dict[str, Any]) -> ReductionCandidate:
    return ReductionCandidate(
        loop=d["loop"], var=d["var"], line=d["line"], operator=d["operator"]
    )


def _loop_class_to_dict(lc: LoopClass) -> dict[str, Any]:
    return {
        "region": lc.region,
        "classification": lc.classification.value,
        "blocking_vars": sorted(lc.blocking_vars),
        "privatizable": sorted(lc.privatizable),
        "reductions": [_reduction_to_dict(c) for c in lc.reductions],
    }


def _loop_class_from_dict(d: dict[str, Any]) -> LoopClass:
    return LoopClass(
        region=d["region"],
        classification=LoopClassification(d["classification"]),
        blocking_vars=set(d["blocking_vars"]),
        privatizable=set(d["privatizable"]),
        reductions=[_reduction_from_dict(c) for c in d["reductions"]],
    )


def _opt_loop_class_to_dict(lc: LoopClass | None) -> dict[str, Any] | None:
    return None if lc is None else _loop_class_to_dict(lc)


def _opt_loop_class_from_dict(d: dict[str, Any] | None) -> LoopClass | None:
    return None if d is None else _loop_class_from_dict(d)


def _pipeline_to_dict(p: MultiLoopPipeline) -> dict[str, Any]:
    return {
        "loop_x": p.loop_x,
        "loop_y": p.loop_y,
        "a": p.a,
        "b": p.b,
        "efficiency": p.efficiency,
        "n_pairs": p.n_pairs,
        "trips_x": p.trips_x,
        "trips_y": p.trips_y,
        "stage_x": _opt_loop_class_to_dict(p.stage_x),
        "stage_y": _opt_loop_class_to_dict(p.stage_y),
    }


def _pipeline_from_dict(d: dict[str, Any]) -> MultiLoopPipeline:
    return MultiLoopPipeline(
        loop_x=d["loop_x"],
        loop_y=d["loop_y"],
        a=d["a"],
        b=d["b"],
        efficiency=d["efficiency"],
        n_pairs=d["n_pairs"],
        trips_x=d["trips_x"],
        trips_y=d["trips_y"],
        stage_x=_opt_loop_class_from_dict(d["stage_x"]),
        stage_y=_opt_loop_class_from_dict(d["stage_y"]),
    )


def _wavefront_to_dict(w: WavefrontCandidate) -> dict[str, Any]:
    return {
        "loop_x": w.loop_x,
        "loop_y": w.loop_y,
        "carrier": w.carrier,
        "a": w.a,
        "b": w.b,
        "r2": w.r2,
        "n_pairs": w.n_pairs,
        "direction": w.direction,
    }


def _wavefront_from_dict(d: dict[str, Any]) -> WavefrontCandidate:
    return WavefrontCandidate(
        loop_x=d["loop_x"],
        loop_y=d["loop_y"],
        carrier=d["carrier"],
        a=d["a"],
        b=d["b"],
        r2=d["r2"],
        n_pairs=d["n_pairs"],
        direction=d["direction"],
    )


def _cu_to_dict(cu: CU) -> dict[str, Any]:
    return {
        "cu_id": cu.cu_id,
        "region": cu.region,
        "kind": cu.kind,
        "stmt_ids": [s.stmt_id for s in cu.stmts],
        "lines": sorted(cu.lines),
        "reads": sorted(cu.reads),
        "writes": sorted(cu.writes),
        "callees": list(cu.callees),
        "early_exit": cu.early_exit,
    }


def _cu_from_dict(d: dict[str, Any], program) -> CU:
    return CU(
        cu_id=d["cu_id"],
        region=d["region"],
        kind=d["kind"],
        stmts=[program.stmts[sid] for sid in d["stmt_ids"] if sid in program.stmts],
        lines=set(d["lines"]),
        reads=set(d["reads"]),
        writes=set(d["writes"]),
        callees=list(d["callees"]),
        early_exit=d["early_exit"],
    )


def _graph_to_dict(graph: DiGraph) -> dict[str, Any]:
    return {
        "nodes": list(graph.nodes()),
        "edges": [
            [src, dst, {"kind": data.get("kind"), "vars": sorted(data.get("vars", ()))}]
            for src, dst, data in graph.edges()
        ],
    }


def _graph_from_dict(d: dict[str, Any]) -> DiGraph:
    graph = DiGraph()
    for node in d["nodes"]:
        graph.add_node(node)
    for src, dst, data in d["edges"]:
        graph.add_edge(src, dst, kind=data["kind"], vars=set(data["vars"]))
    return graph


def _task_to_dict(tp: TaskParallelism) -> dict[str, Any]:
    return {
        "region": tp.region,
        "cus": [_cu_to_dict(cu) for cu in tp.cus],
        "graph": _graph_to_dict(tp.graph),
        "marks": [[cu, m] for cu, m in sorted(tp.marks.items())],
        "barrier_inputs": [
            [cu, list(inputs)] for cu, inputs in sorted(tp.barrier_inputs.items())
        ],
        "parallel_barriers": [list(p) for p in tp.parallel_barriers],
        "total_instructions": tp.total_instructions,
        "critical_path_instructions": tp.critical_path_instructions,
        "critical_path": list(tp.critical_path),
        "concurrent_tasks": list(tp.concurrent_tasks),
        "weights": [[cu, w] for cu, w in sorted(tp.weights.items())],
        "single_step_total": tp.single_step_total,
        "single_step_cp": tp.single_step_cp,
    }


def _task_from_dict(d: dict[str, Any], program) -> TaskParallelism:
    return TaskParallelism(
        region=d["region"],
        cus=[_cu_from_dict(c, program) for c in d["cus"]],
        graph=_graph_from_dict(d["graph"]),
        marks={cu: m for cu, m in d["marks"]},
        barrier_inputs={cu: list(inputs) for cu, inputs in d["barrier_inputs"]},
        parallel_barriers=[tuple(p) for p in d["parallel_barriers"]],
        total_instructions=d["total_instructions"],
        critical_path_instructions=d["critical_path_instructions"],
        critical_path=list(d["critical_path"]),
        concurrent_tasks=list(d["concurrent_tasks"]),
        weights={cu: w for cu, w in d["weights"]},
        single_step_total=d["single_step_total"],
        single_step_cp=d["single_step_cp"],
    )


def _geometric_to_dict(gd: GeometricDecomposition) -> dict[str, Any]:
    return {
        "region": gd.region,
        "function": gd.function,
        "analyzed_loops": [
            [region, _loop_class_to_dict(lc)] for region, lc in gd.analyzed_loops.items()
        ],
        "called_functions": list(gd.called_functions),
    }


def _geometric_from_dict(d: dict[str, Any]) -> GeometricDecomposition:
    return GeometricDecomposition(
        region=d["region"],
        function=d["function"],
        analyzed_loops={
            region: _loop_class_from_dict(lc) for region, lc in d["analyzed_loops"]
        },
        called_functions=list(d["called_functions"]),
    )


def _evidence_to_dict(ev: Evidence) -> dict[str, Any]:
    return {
        "detector": ev.detector,
        "kind": ev.kind,
        "regions": list(ev.regions),
        "status": ev.status,
        "reason": ev.reason,
        "threshold": ev.threshold,
        "threshold_value": ev.threshold_value,
        "observed": ev.observed,
        "detail": ev.detail,
    }


def _evidence_from_dict(d: dict[str, Any]) -> Evidence:
    return Evidence(
        detector=d["detector"],
        kind=d["kind"],
        regions=tuple(d["regions"]),
        status=d["status"],
        reason=d["reason"],
        threshold=d["threshold"],
        threshold_value=d["threshold_value"],
        observed=d["observed"],
        detail=d["detail"],
    )


def _span_to_dict(sp: Span) -> dict[str, Any]:
    return {
        "name": sp.name,
        "span_id": sp.span_id,
        "parent_id": sp.parent_id,
        "start_s": sp.start_s,
        "duration_s": sp.duration_s,
        "attrs": [[k, sp.attrs[k]] for k in sorted(sp.attrs)],
    }


def _span_from_dict(d: dict[str, Any]) -> Span:
    return Span(
        name=d["name"],
        span_id=d["span_id"],
        parent_id=d["parent_id"],
        start_s=d["start_s"],
        duration_s=d["duration_s"],
        attrs={k: v for k, v in d["attrs"]},
    )


def _trace_to_dict(trace: AnalysisTrace | None) -> dict[str, Any] | None:
    if trace is None:
        return None
    doc: dict[str, Any] = {
        "stages": [
            {
                "detector": st.detector,
                "stage": st.stage,
                "wall_time_s": st.wall_time_s,
                "counters": [[k, st.counters[k]] for k in sorted(st.counters)],
            }
            for st in trace.stages
        ],
        "evidence": [_evidence_to_dict(ev) for ev in trace.evidence],
    }
    # Tolerated extension (no version bump): the spans block appears only
    # when the run collected spans, so documents written before this key
    # existed and documents written with tracing disabled are identical.
    if trace.spans:
        doc["spans"] = [_span_to_dict(sp) for sp in trace.spans]
    return doc


def _trace_from_dict(d: dict[str, Any] | None) -> AnalysisTrace | None:
    if d is None:
        return None
    return AnalysisTrace(
        stages=[
            StageTrace(
                detector=st["detector"],
                stage=st["stage"],
                wall_time_s=st["wall_time_s"],
                counters={k: v for k, v in st["counters"]},
            )
            for st in d["stages"]
        ],
        evidence=[_evidence_from_dict(ev) for ev in d["evidence"]],
        spans=[_span_from_dict(sp) for sp in d.get("spans", [])],
    )


# ---------------------------------------------------------------------------
# document encoder/decoder
# ---------------------------------------------------------------------------


def analysis_to_dict(result: AnalysisResult) -> dict[str, Any]:
    """Convert *result* to the versioned JSON-compatible document."""
    if not result.program.source:
        raise ValueError(
            "analysis schema requires a source-bearing Program "
            "(programs built without source text cannot be re-parsed on load)"
        )
    pipeline_index = {id(p): i for i, p in enumerate(result.pipelines)}

    def fusion_to_dict(f: FusionCandidate) -> dict[str, Any]:
        idx = pipeline_index.get(id(f.pipeline))
        doc: dict[str, Any] = {"loop_x": f.loop_x, "loop_y": f.loop_y,
                               "pipeline_index": idx}
        if idx is None:  # detached candidate: inline the pipeline record
            doc["pipeline"] = _pipeline_to_dict(f.pipeline)
        return doc

    doc: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "program": {"source": result.program.source},
        "profile": profile_to_dict(result.profile),
        "hotspots": [_hotspot_to_dict(h) for h in result.hotspots],
        "loop_classes": [
            [region, _loop_class_to_dict(lc)]
            for region, lc in result.loop_classes.items()
        ],
        "pipelines": [_pipeline_to_dict(p) for p in result.pipelines],
        "fusions": [fusion_to_dict(f) for f in result.fusions],
        "tasks": [
            [region, _task_to_dict(tp)] for region, tp in result.tasks.items()
        ],
        "geometric": [_geometric_to_dict(gd) for gd in result.geometric],
        "reductions": [
            [loop, [_reduction_to_dict(c) for c in candidates]]
            for loop, candidates in result.reductions.items()
        ],
        "trace": _trace_to_dict(result.trace),
    }
    # Tolerated extension (no version bump), mirroring ``trace.spans``: the
    # wavefronts block appears only when the detector found something, so
    # documents for programs without wavefront shapes — including every
    # document written before this key existed — are byte-identical.
    if result.wavefronts:
        doc["wavefronts"] = [_wavefront_to_dict(w) for w in result.wavefronts]
    return doc


def analysis_from_dict(data: dict[str, Any]) -> AnalysisResult:
    """Rebuild an :class:`AnalysisResult` from :func:`analysis_to_dict`.

    Unknown top-level keys are ignored, so producers may attach extension
    sections (the CLI's ``bench --json`` adds a ``simulation`` block).
    """
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported analysis schema version {version!r}")
    program = parse_program(data["program"]["source"])
    profile = profile_from_dict(data["profile"])
    result = AnalysisResult(
        program=program,
        profile=profile,
        hotspots=[_hotspot_from_dict(h) for h in data["hotspots"]],
        loop_classes={
            region: _loop_class_from_dict(lc) for region, lc in data["loop_classes"]
        },
        pipelines=[_pipeline_from_dict(p) for p in data["pipelines"]],
        tasks={region: _task_from_dict(tp, program) for region, tp in data["tasks"]},
        geometric=[_geometric_from_dict(gd) for gd in data["geometric"]],
        reductions={
            loop: [_reduction_from_dict(c) for c in candidates]
            for loop, candidates in data["reductions"]
        },
        wavefronts=[_wavefront_from_dict(w) for w in data.get("wavefronts", [])],
        trace=_trace_from_dict(data["trace"]),
    )
    for f in data["fusions"]:
        idx = f.get("pipeline_index")
        pipeline = (
            result.pipelines[idx]
            if idx is not None
            else _pipeline_from_dict(f["pipeline"])
        )
        result.fusions.append(
            FusionCandidate(loop_x=f["loop_x"], loop_y=f["loop_y"], pipeline=pipeline)
        )
    return result


# ---------------------------------------------------------------------------
# learned-verdict extension block
# ---------------------------------------------------------------------------

#: Top-level key of the learned-classifier extension block.
LEARNED_BLOCK_KEY = "learned"


def attach_learned_verdicts(
    doc: dict[str, Any],
    *,
    model_kind: str,
    model_digest: str,
    features_version: int,
    verdicts: dict[str, bool],
) -> dict[str, Any]:
    """Attach a learned-classifier verdict block to an analysis document.

    Tolerated extension (no version bump), mirroring ``wavefronts``: the
    rule-based pipeline never emits this key, so every document produced
    by :func:`analysis_to_dict` — including all benchmark goldens — stays
    byte-identical whether or not the learned subsystem is installed.
    Consumers that opt in stamp the predicting model's identity next to
    its verdicts, so a document always names the artifact that judged it.
    """
    if not verdicts:
        raise ValueError("learned block requires at least one verdict")
    for dim, value in verdicts.items():
        if not isinstance(dim, str) or not isinstance(value, bool):
            raise ValueError(
                f"learned verdicts must map str -> bool, got {dim!r}: {value!r}"
            )
    doc[LEARNED_BLOCK_KEY] = {
        "model": model_kind,
        "model_digest": model_digest,
        "features_version": features_version,
        "verdicts": dict(sorted(verdicts.items())),
    }
    return doc


def learned_verdicts_from_dict(data: dict[str, Any]) -> dict[str, Any] | None:
    """Read back an attached learned block (``None`` when absent).

    Validates the shape written by :func:`attach_learned_verdicts`;
    documents that never opted in pass through silently.
    """
    block = data.get(LEARNED_BLOCK_KEY)
    if block is None:
        return None
    for key in ("model", "model_digest", "features_version", "verdicts"):
        if key not in block:
            raise ValueError(f"learned block missing key {key!r}")
    for dim, value in block["verdicts"].items():
        if not isinstance(value, bool):
            raise ValueError(f"learned verdict for {dim!r} is not a bool")
    return block


# ---------------------------------------------------------------------------
# service job-record envelope
# ---------------------------------------------------------------------------

#: Lifecycle states of an analysis-service job (see :mod:`repro.service`).
#: Terminal states are ``done``, ``failed``, and ``cancelled``; a failed
#: job's ``error`` field is the :class:`~repro.runtime.parallel.FailedOutcome`
#: record with its ``"failed": true`` marker.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


def job_record(job: dict[str, Any]) -> dict[str, Any]:
    """Stamp a service job dict as a versioned job-record envelope.

    Job records are a third document kind riding on the analysis schema
    version (like the sweep outcome records): the envelope adds
    ``schema_version`` and a ``"record": "job"`` discriminator, leaving the
    job payload untouched.  A job's ``result`` field holds an ordinary
    analysis or outcome document, so consumers dispatch with the machinery
    they already have.

    Since the execution-core refactor the envelope also carries three
    provenance fields (tolerated extensions under schema version 1 — old
    consumers that ignore unknown keys keep working):

    ``digest``
        The submission's content address (``repro.service.jobs.job_digest``)
        — equal digests mean executing either submission would produce the
        same result document.
    ``coalesced_with``
        The leader job's id when this submission attached to identical
        in-flight work instead of executing (``null`` for jobs that ran).
    ``backend``
        Which execution backend (``thread``/``process``) ran — or would
        run — the job.
    """
    doc = dict(job)
    doc["schema_version"] = SCHEMA_VERSION
    doc["record"] = "job"
    return doc


def validate_job_record(doc: dict[str, Any]) -> dict[str, Any]:
    """Check *doc* is a job record of this schema version; return it.

    Raises :class:`ValueError` on a version mismatch, a missing ``"job"``
    discriminator, or an unknown lifecycle state.
    """
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported job record schema version {version!r}")
    if doc.get("record") != "job":
        raise ValueError("document is not a job record")
    state = doc.get("state")
    if state not in JOB_STATES:
        raise ValueError(f"unknown job state {state!r}")
    coalesced_with = doc.get("coalesced_with")
    if coalesced_with is not None and not isinstance(coalesced_with, int):
        raise ValueError(
            f"'coalesced_with' must be a job id or null, got {coalesced_with!r}"
        )
    digest = doc.get("digest")
    if digest is not None and not isinstance(digest, str):
        raise ValueError(f"'digest' must be a hex string, got {digest!r}")
    return doc


#: Lifecycle states of a campaign cell (see :mod:`repro.campaign`).
#: ``done``/``failed`` are terminal; ``pending`` cells are planned work an
#: interrupted ``campaign run`` resumes.
CAMPAIGN_CELL_STATES = ("pending", "done", "failed")


def campaign_record(cell: dict[str, Any]) -> dict[str, Any]:
    """Stamp a campaign-cell dict as a versioned campaign-record envelope.

    Campaign records are a fourth document kind riding on the analysis
    schema version (a tolerated extension beside the job-record envelope):
    the envelope adds ``schema_version`` and a ``"record": "campaign_cell"``
    discriminator, leaving the cell's fields untouched.  A cell's
    ``result`` field holds an ordinary outcome document — the exact bytes
    ``BenchmarkOutcome.to_dict()`` produced when the cell ran — so
    consumers dispatch with the machinery they already have, and Table III
    regenerated from a stored campaign is byte-identical to a live sweep.

    Expected cell fields: ``campaign``, ``cell_id``, the axis coordinates
    (``program``, ``machine``, ``scale``, ``threshold``), the content
    ``digest`` of the cell's bench payload
    (:func:`repro.service.jobs.job_digest`), ``state``, and
    ``result``/``error``.
    """
    doc = dict(cell)
    doc["schema_version"] = SCHEMA_VERSION
    doc["record"] = "campaign_cell"
    return doc


def validate_campaign_record(doc: dict[str, Any]) -> dict[str, Any]:
    """Check *doc* is a campaign-cell record of this schema version.

    Raises :class:`ValueError` on a version mismatch, a missing
    ``"campaign_cell"`` discriminator, an unknown cell state, or missing
    coordinates.
    """
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported campaign record schema version {version!r}")
    if doc.get("record") != "campaign_cell":
        raise ValueError("document is not a campaign cell record")
    state = doc.get("state")
    if state not in CAMPAIGN_CELL_STATES:
        raise ValueError(f"unknown campaign cell state {state!r}")
    for field in ("campaign", "cell_id", "program", "machine"):
        if not isinstance(doc.get(field), str) or not doc.get(field):
            raise ValueError(f"campaign record missing {field!r}")
    digest = doc.get("digest")
    if not isinstance(digest, str) or not digest:
        raise ValueError(f"'digest' must be a non-empty hex string, got {digest!r}")
    return doc


def strip_trace_timings(doc: dict[str, Any]) -> dict[str, Any]:
    """Copy of an analysis document with trace wall-clock timings zeroed.

    Everything in the document is deterministic except the per-stage
    ``wall_time_s`` measurements and the optional ``trace.spans`` block —
    spans are wall-clock telemetry whose *structure* also varies with the
    execution path (a warm-cache run has a ``cache.read`` span where a cold
    run has the profiling work; a service run adds queue-wait).  Stripping
    zeroes the stage timings and drops the spans block entirely, so two
    runs of the same analysis agree byte-for-byte on the canonical JSON of
    their stripped forms — the identity the service's round-trip tests and
    ``analysis_digest`` callers need (cf. the note on
    :func:`analysis_digest`).
    """
    doc = dict(doc)
    trace = doc.get("trace")
    if trace is not None:
        trace = dict(trace)
        trace["stages"] = [dict(st, wall_time_s=0.0) for st in trace["stages"]]
        trace.pop("spans", None)
        doc["trace"] = trace
    return doc


def analysis_to_json(result: AnalysisResult, pretty: bool = False) -> str:
    """Serialize *result* to JSON text.

    ``pretty=False`` yields the canonical compact form (sorted keys, fixed
    separators — byte-deterministic); ``pretty=True`` is the same document
    indented for humans.
    """
    doc = analysis_to_dict(result)
    if pretty:
        return json.dumps(doc, sort_keys=True, indent=2)
    return canonical_json(doc)


def analysis_from_json(text: str) -> AnalysisResult:
    """Rebuild a result from :func:`analysis_to_json` output."""
    return analysis_from_dict(json.loads(text))


def canonical_analysis_json(result: AnalysisResult) -> str:
    """The canonical byte-deterministic JSON text (compact form)."""
    return analysis_to_json(result, pretty=False)


def analysis_digest(result: AnalysisResult) -> str:
    """SHA-256 hex digest of the canonical JSON — a content address.

    Note the document includes the trace's wall-clock timings, so digests
    differ across runs; strip the trace first for a timing-independent
    identity (``result.trace = None``).
    """
    return hashlib.sha256(canonical_analysis_json(result).encode("utf-8")).hexdigest()
