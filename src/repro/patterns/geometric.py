"""Geometric decomposition detection (Section III-C, Algorithm 2).

A hotspot *function* is a geometric-decomposition candidate when every loop
among its immediate PET children — and every loop of functions it calls
directly (recursively expanded) — is a do-all or a reduction loop.  The
function can then be invoked once per data chunk on separate threads, which
coarsens granularity compared to parallelizing each loop individually.

Note: the paper's Algorithm 2 pseudocode tests ``!doall OR !reduction``,
which is vacuously true; we implement the evident intent (each loop must be
do-all **or** reduction, DESIGN.md §5.2).
"""

from __future__ import annotations

from typing import Callable

from repro.lang.ast_nodes import Program
from repro.patterns.doall import classify_loop
from repro.patterns.framework import (
    AnalysisContext,
    AnalysisResult,
    Detector,
    Evidence,
    StageTrace,
)
from repro.patterns.result import GeometricDecomposition, LoopClass
from repro.profiling.model import PETNode, Profile


def _pet_nodes_for_region(profile: Profile, region: int) -> list[PETNode]:
    if profile.pet is None:
        return []
    return [n for n in profile.pet.walk() if n.region == region]


def detect_geometric_decomposition(
    program: Program,
    profile: Profile,
    func_region: int,
    min_invocations: int = 2,
    classify: Callable[[int], LoopClass] | None = None,
) -> GeometricDecomposition | None:
    """Run Algorithm 2 on a function region; None when not a candidate.

    Geometric decomposition calls the same function once per data chunk on
    separate threads, so the candidate must actually be *called* on
    separable data: we require at least *min_invocations* dynamic
    invocations and exclude the program's entry function (the PET root) —
    a whole program cannot be chunked from outside itself.  This mirrors
    the paper's reported candidates (``localSearch``, ``cluster``), which
    are invoked repeatedly from a driver loop, while single-call kernels
    like ``bicg`` fall through to plain reduction/do-all reporting.
    """
    if classify is None:
        classify = lambda loop: classify_loop(program, profile, loop)  # noqa: E731
    reg = program.regions.get(func_region)
    if reg is None or reg.kind != "function":
        return None
    nodes = _pet_nodes_for_region(profile, func_region)
    if not nodes:
        return None
    if profile.pet is not None and profile.pet.region == func_region:
        return None
    if sum(n.invocations for n in nodes) < min_invocations:
        return None

    analyzed: dict[int, LoopClass] = {}
    called: list[str] = []
    visited_functions: set[int] = set()

    def examine(region: int) -> bool:
        """True when every loop reachable per Algorithm 2 is do-all/reduction."""
        if region in visited_functions:
            return True
        visited_functions.add(region)
        ok = True
        for node in _pet_nodes_for_region(profile, region):
            for child in node.children:
                if child.kind == "loop":
                    if child.region not in analyzed:
                        analyzed[child.region] = classify(child.region)
                    if not analyzed[child.region].parallelizable:
                        ok = False
                elif child.kind == "function":
                    child_reg = program.regions.get(child.region)
                    if child_reg is not None and child_reg.name not in called:
                        called.append(child_reg.name)
                    if not examine(child.region):
                        ok = False
        return ok

    if not examine(func_region):
        return None
    if len(analyzed) < 2:
        # A function wrapping a single small loop (nqueens' safe_place) is
        # not a geometric-decomposition candidate: the pattern's value is
        # coarsening *multiple* loops behind one chunked call (Section
        # III-C), as in localSearch and cluster.
        return None
    return GeometricDecomposition(
        region=func_region,
        function=reg.name,
        analyzed_loops=analyzed,
        called_functions=called,
    )


class GeometricDecompositionDetector(Detector):
    """Hotspot-scoped Algorithm 2 over hotspot *functions*."""

    name = "geometric"
    stage = "geometric"
    requires = ("loop-classes",)

    def run(
        self, ctx: AnalysisContext, result: AnalysisResult, trace: StageTrace
    ) -> list[Evidence]:
        evidence: list[Evidence] = []
        for hotspot in result.hotspots:
            if hotspot.kind != "function":
                continue
            trace.count("hotspot-functions")
            gd = detect_geometric_decomposition(
                ctx.program, ctx.profile, hotspot.region, classify=ctx.loop_class
            )
            if gd is not None:
                result.geometric.append(gd)
                trace.count("candidates")
                evidence.append(
                    Evidence(
                        detector=self.name,
                        kind="geometric",
                        regions=(gd.region,),
                        status="accepted",
                        reason="all-loops-doall-or-reduction",
                        detail=f"{gd.function}() loops={sorted(gd.analyzed_loops)}",
                    )
                )
            else:
                evidence.append(
                    Evidence(
                        detector=self.name,
                        kind="geometric",
                        regions=(hotspot.region,),
                        status="rejected",
                        reason="not-a-candidate",
                        detail=f"{hotspot.name}",
                    )
                )
        return evidence
