"""Task-parallelism detection (Section III-B, Algorithm 1, Table V).

The BFS classification marks every CU of a region's CU graph:

* the first unmarked CU in serial order becomes a **fork**,
* unmarked dependents become **workers**,
* a dependent that was already marked becomes a **barrier** (it waits on
  more than one CU).

Two barriers may run in parallel iff there is no directed path between them
(``checkParallelBarriers``).

The *estimated speedup* of Table V is total instructions divided by
critical-path instructions.  For non-recursive regions we take the weighted
critical path through the CU graph directly.  For recursive hotspots
(fib/sort/strassen) the meaningful critical path is the *span* of the
dynamic task tree: we recurse over the recorded call tree, replacing each
recursive call CU's weight by the span of the child activation, and take
the CU-graph critical path per activation.
"""

from __future__ import annotations

from collections import deque

from repro.cu.detect import detect_cus
from repro.cu.graph import build_cu_graph, cu_weight
from repro.cu.model import CU
from repro.graphs.algorithms import critical_path, has_path
from repro.graphs.digraph import DiGraph
from repro.lang.analysis import is_recursive
from repro.lang.ast_nodes import Program
from repro.patterns.framework import (
    AnalysisContext,
    AnalysisResult,
    Detector,
    Evidence,
    StageTrace,
    evaluate_task_candidates,
)
from repro.patterns.result import TaskParallelism
from repro.profiling.model import CallNode, Profile


def classify_cus(graph: DiGraph, cus: list[CU]) -> dict[int, str]:
    """Algorithm 1: BFS fork/worker/barrier classification."""
    marks: dict[int, str] = {}
    serial = [cu.cu_id for cu in sorted(cus, key=lambda c: (c.first_line, c.cu_id))]
    processed_edges: set[tuple[int, int]] = set()
    while len(marks) < len(serial):
        start = next(cu for cu in serial if cu not in marks)
        marks[start] = "fork"
        queue: deque[int] = deque([start])
        while queue:
            node = queue.popleft()
            for dep in sorted(graph.successors(node)):
                if (node, dep) in processed_edges:
                    continue
                processed_edges.add((node, dep))
                if dep not in marks:
                    marks[dep] = "worker"
                else:
                    marks[dep] = "barrier"
                queue.append(dep)
    return marks


def parallel_barrier_pairs(graph: DiGraph, marks: dict[int, str]) -> list[tuple[int, int]]:
    """Barrier pairs with no directed path between them (either way)."""
    barriers = sorted(cu for cu, m in marks.items() if m == "barrier")
    out: list[tuple[int, int]] = []
    for i, b1 in enumerate(barriers):
        for b2 in barriers[i + 1 :]:
            if not has_path(graph, b1, b2) and not has_path(graph, b2, b1):
                out.append((b1, b2))
    return out


def concurrent_task_set(
    graph: DiGraph, cus: list[CU], weights: dict[int, float]
) -> list[int]:
    """A heavy antichain of the CU graph: pairwise path-free CUs.

    This is the set of tasks a master/worker implementation would run
    concurrently.  A single greedy pass seeded by the heaviest CU can get
    stuck on a barrier (fdtd-2d's hz update is the heaviest CU but depends
    on everything), so we grow one greedy antichain per seed and keep the
    heaviest.
    """
    ordered = sorted(cus, key=lambda c: (-weights.get(c.cu_id, 0.0), c.first_line))
    candidates = [cu for cu in ordered if weights.get(cu.cu_id, 0.0) > 0.0]

    def independent(a: int, b: int) -> bool:
        return not has_path(graph, a, b) and not has_path(graph, b, a)

    best: list[int] = []
    best_weight = -1.0
    for seed in candidates:
        chosen = [seed.cu_id]
        for cu in candidates:
            if cu.cu_id == seed.cu_id:
                continue
            if all(independent(cu.cu_id, other) for other in chosen):
                chosen.append(cu.cu_id)
        total = sum(weights.get(c, 0.0) for c in chosen)
        if total > best_weight or (
            total == best_weight and len(chosen) > len(best)
        ):
            best = chosen
            best_weight = total
    return sorted(best)


def _barrier_inputs(graph: DiGraph, marks: dict[int, str]) -> dict[int, list[int]]:
    return {
        cu: sorted(graph.predecessors(cu))
        for cu, m in marks.items()
        if m == "barrier"
    }


def _recursive_span(
    profile: Profile,
    program: Program,
    region: int,
    cus: list[CU],
    graph: DiGraph,
) -> tuple[float, float] | None:
    """(work, span) over the dynamic task tree of a recursive hotspot."""
    if profile.calltree is None:
        return None
    roots = [n for n in profile.calltree.walk() if n.region == region]
    if not roots:
        return None
    # Top-most activation of the region:
    root = roots[0]

    line_to_cu: dict[int, int] = {}
    for cu in cus:
        for line in cu.lines:
            line_to_cu.setdefault(line, cu.cu_id)
    # Distribute an activation's exclusive cost across CUs proportionally to
    # their aggregate direct line costs.
    agg_excl = {
        cu.cu_id: sum(profile.line_costs.get(line, 0) for line in cu.lines)
        for cu in cus
    }
    total_excl = sum(agg_excl.values()) or 1

    span_cache: dict[int, float] = {}

    def span_of(act: CallNode) -> float:
        if act.act_id in span_cache:
            return span_cache[act.act_id]
        if act.region != region:
            # Non-self activations are treated as sequential black boxes.
            span_cache[act.act_id] = float(act.inclusive_cost)
            return float(act.inclusive_cost)
        child_span: dict[int, float] = {}
        for child in act.children:
            cu_id = line_to_cu.get(child.site_line)
            if cu_id is None:
                continue
            child_span[cu_id] = child_span.get(cu_id, 0.0) + span_of(child)

        def weight(cu_id: int) -> float:
            local = act.exclusive_cost * agg_excl.get(cu_id, 0) / total_excl
            return local + child_span.get(cu_id, 0.0)

        if len(graph) == 0:
            value = float(act.inclusive_cost)
        else:
            value, _ = critical_path(graph, weight)
            # CUs not on any path still execute; ensure span >= heaviest CU.
            value = max(value, max((weight(c.cu_id) for c in cus), default=0.0))
        span_cache[act.act_id] = value
        return value

    return float(root.inclusive_cost), span_of(root)


def _single_step(
    profile: Profile,
    region: int,
    cus: list[CU],
    graph: DiGraph,
) -> tuple[int, int] | None:
    """(total, critical path) for the top activation, recursion unexpanded.

    Child activations contribute their full inclusive cost as an opaque
    block assigned to the call-site CU — the paper's "only one recursive
    step" semantics.
    """
    if profile.calltree is None:
        return None
    roots = [n for n in profile.calltree.walk() if n.region == region]
    if not roots:
        return None
    root = roots[0]
    line_to_cu: dict[int, int] = {}
    for cu in cus:
        for line in cu.lines:
            line_to_cu.setdefault(line, cu.cu_id)
    agg_excl = {
        cu.cu_id: sum(profile.line_costs.get(line, 0) for line in cu.lines)
        for cu in cus
    }
    total_excl = sum(agg_excl.values()) or 1
    child_cost: dict[int, float] = {}
    for child in root.children:
        cu_id = line_to_cu.get(child.site_line)
        if cu_id is None:
            continue
        child_cost[cu_id] = child_cost.get(cu_id, 0.0) + child.inclusive_cost

    def weight(cu_id: int) -> float:
        local = root.exclusive_cost * agg_excl.get(cu_id, 0) / total_excl
        return local + child_cost.get(cu_id, 0.0)

    total = root.inclusive_cost
    if len(graph) == 0:
        return int(total), int(total)
    cp, _ = critical_path(graph, weight)
    cp = max(cp, max((weight(c.cu_id) for c in cus), default=0.0))
    return int(total), int(round(cp))


def detect_task_parallelism(
    program: Program,
    profile: Profile,
    region: int,
    include_control: bool = True,
    cus: list[CU] | None = None,
    graph: DiGraph | None = None,
) -> TaskParallelism:
    """Run the full Section III-B analysis on one region.

    *cus* and *graph* accept precomputed artifacts (e.g. the memoized ones
    from ``AnalysisContext``) so repeated analyses of the same region skip
    CU detection and graph construction.
    """
    if cus is None:
        cus = detect_cus(program, region)
    if graph is None:
        graph = build_cu_graph(cus, profile, region, include_control=include_control)
    marks = classify_cus(graph, cus)

    weights = {cu.cu_id: float(cu_weight(cu, profile)) for cu in cus}
    reg = program.regions.get(region)
    recursive = (
        reg is not None
        and reg.kind == "function"
        and program.has_function(reg.function)
        and is_recursive(program.function(reg.function), program)
    )

    work_span: tuple[float, float] | None = None
    if recursive:
        work_span = _recursive_span(profile, program, region, cus, graph)
    if work_span is None:
        total = sum(weights.values())
        if len(graph) and total > 0:
            span, path = critical_path(graph, lambda cu: weights[cu])
            span = max(span, max(weights.values(), default=0.0))
        else:
            span, path = total, [cu.cu_id for cu in cus]
        work, span_value, cp = total, span, path
    else:
        work, span_value = work_span
        _, cp = critical_path(graph, lambda cu: weights.get(cu, 0.0)) if len(graph) else (0.0, [])

    single = _single_step(profile, region, cus, graph)
    return TaskParallelism(
        region=region,
        cus=cus,
        graph=graph,
        marks=marks,
        barrier_inputs=_barrier_inputs(graph, marks),
        parallel_barriers=parallel_barrier_pairs(graph, marks),
        concurrent_tasks=concurrent_task_set(graph, cus, weights),
        weights=weights,
        total_instructions=int(round(work)),
        critical_path_instructions=int(round(span_value)),
        critical_path=list(cp),
        single_step_total=single[0] if single else 0,
        single_step_cp=single[1] if single else 0,
    )


class TaskParallelismDetector(Detector):
    """Hotspot-scoped Algorithm 1, with the engine's acceptance gates
    (:data:`MIN_TASK_SPEEDUP`, significant-task count,
    :data:`MIN_TASK_GRAIN`) evaluated into the evidence trace."""

    name = "tasks"
    stage = "tasks"
    requires = ("loop-classes",)

    def run(
        self, ctx: AnalysisContext, result: AnalysisResult, trace: StageTrace
    ) -> list[Evidence]:
        for hotspot in result.hotspots:
            result.tasks[hotspot.region] = detect_task_parallelism(
                ctx.program,
                ctx.profile,
                hotspot.region,
                cus=ctx.cus(hotspot.region),
                graph=ctx.cu_graph(hotspot.region),
            )
            trace.count("regions")
        best, evidence = evaluate_task_candidates(result)
        trace.counters["accepted"] = sum(1 for ev in evidence if ev.accepted)
        trace.counters["rejected"] = sum(1 for ev in evidence if not ev.accepted)
        if best is not None:
            trace.counters["best_region"] = best.region
        return evidence
