"""Ranking multiple detected patterns — the paper's future work.

Section VI: "We aim to define metrics that help choose the best pattern
among multiple detected parallel patterns.  Such metrics may also quantify
the human effort needed for code transformation."

:func:`rank_patterns` enumerates *every* applicable pattern for a program
(not only the engine's primary label), simulates each one's schedule over
the profile, estimates the transformation effort, and ranks by simulated
benefit per unit of effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.patterns.engine import AnalysisResult, primary_pattern_regions
from repro.patterns.result import SUPPORTING_STRUCTURE

#: Base effort (in "programmer units") of applying each supporting
#: structure.  Calibrated ordinally: a pragma on one loop is trivial; a
#: hand-built pipeline with inter-stage synchronization is not.
BASE_EFFORT = {
    "Do-all": 1.0,
    "Reduction": 2.0,
    "Fusion": 2.0,
    "Geometric decomposition": 3.0,
    "Task parallelism": 3.0,
    "Task parallelism + Do-all": 3.5,
    "Geometric decomposition + Reduction": 3.5,
    "Multi-loop pipeline": 4.0,
}


@dataclass(frozen=True)
class PatternOption:
    """One applicable pattern with its projected benefit and cost."""

    label: str
    best_speedup: float
    best_threads: int
    effort: float
    supporting_structure: str
    lines_touched: int

    @property
    def benefit_per_effort(self) -> float:
        gain = max(0.0, self.best_speedup - 1.0)
        return gain / self.effort if self.effort > 0 else 0.0


def _applicable_labels(result: AnalysisResult) -> list[str]:
    labels: list[str] = []
    if result.fusions:
        labels.append("Fusion")
    if result.clean_pipelines():
        labels.append("Multi-loop pipeline")
    task = result.best_task_parallelism()
    if task is not None:
        labels.append("Task parallelism")
    if result.geometric:
        labels.append("Geometric decomposition")
    hot = result.hotspot_regions
    if result.reductions or any(
        lc.is_reduction for r, lc in result.loop_classes.items() if r in hot
    ):
        labels.append("Reduction")
    if any(lc.is_doall for r, lc in result.loop_classes.items() if r in hot):
        labels.append("Do-all")
    return labels


def _lines_touched(result: AnalysisResult, label: str) -> int:
    from repro.cu.detect import region_body
    from repro.lang.analysis import stmt_lines

    regions: list[int] = []
    if label == "Fusion" and result.fusions:
        regions = [result.fusions[0].loop_x, result.fusions[0].loop_y]
    elif label == "Multi-loop pipeline" and result.clean_pipelines():
        p = result.clean_pipelines()[0]
        regions = [p.loop_x, p.loop_y]
    elif label.startswith("Task parallelism"):
        task = result.best_task_parallelism()
        if task is not None:
            regions = [task.region]
    elif label.startswith("Geometric decomposition") and result.geometric:
        regions = [result.geometric[0].region]
    elif label == "Reduction" and result.reductions:
        regions = list(result.reductions)
    else:
        regions = [
            r for r, lc in result.loop_classes.items()
            if lc.is_doall and r in result.hotspot_regions
        ][:1]
    lines: set[int] = set()
    for region in regions:
        reg = result.program.regions.get(region)
        if reg is None or reg.node is None:
            continue
        lines.add(reg.line)
        for stmt in reg.node.body:
            lines |= stmt_lines(stmt)
    return len(lines)


def _intra_pipeline_option(
    result: AnalysisResult, thread_counts: Sequence[int]
) -> PatternOption | None:
    """Offer a DSWP-style intra-loop pipeline for sequential hotspot loops
    (extension; see repro.patterns.intra_pipeline)."""
    from repro.patterns.intra_pipeline import detect_intra_loop_pipeline
    from repro.sim.amdahl import compose_speedup
    from repro.sim.machine import DEFAULT_MACHINE
    from repro.sim.pipeline import simulate_pipeline_chain
    from repro.sim.sweep import sweep_threads

    best = None
    for region, lc in result.loop_classes.items():
        if lc.parallelizable or region not in result.hotspot_regions:
            continue
        pipe = detect_intra_loop_pipeline(result.program, result.profile, region)
        if pipe is None:
            continue
        cost = result.profile.region_cost(region)
        if best is None or cost > best[0]:
            best = (cost, region, pipe)
    if best is None:
        return None
    _, region, pipe = best
    trips = max(1, result.profile.max_trip(region))
    stage_costs = [
        [w / trips] * trips for w in pipe.stage_weights
    ]
    fits = [(1.0, 0.0)] * (pipe.n_stages - 1)

    def speedup_at(p: int) -> float:
        outcome = simulate_pipeline_chain(
            stage_costs,
            fits,
            DEFAULT_MACHINE.with_threads(p),
            stage0_parallel=False,
            streaming=result.profile.streaming_fraction,
        )
        return compose_speedup(float(result.profile.total_cost), [outcome])

    sweep = sweep_threads(speedup_at, thread_counts)
    lines = len(
        set().union(*(cu.lines for cu in pipe.cus)) if pipe.cus else set()
    )
    return PatternOption(
        label="Pipeline (intra-loop)",
        best_speedup=sweep.best_speedup,
        best_threads=sweep.best_threads,
        effort=round(4.0 + lines / 50.0, 2),
        supporting_structure="SPMD",
        lines_touched=lines,
    )


def rank_patterns(
    result: AnalysisResult,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> list[PatternOption]:
    """All applicable patterns, ranked by benefit per unit of effort."""
    from repro.sim.planner import simulate_analysis
    from repro.sim.sweep import sweep_threads

    options: list[PatternOption] = []
    intra = _intra_pipeline_option(result, thread_counts)
    if intra is not None:
        options.append(intra)
    for label in _applicable_labels(result):
        sweep = sweep_threads(
            lambda p, lbl=label: simulate_analysis(result, p, label=lbl),
            thread_counts,
        )
        touched = _lines_touched(result, label)
        effort = BASE_EFFORT.get(label, 3.0) + touched / 50.0
        options.append(
            PatternOption(
                label=label,
                best_speedup=sweep.best_speedup,
                best_threads=sweep.best_threads,
                effort=round(effort, 2),
                supporting_structure=SUPPORTING_STRUCTURE.get(
                    label.split(" + ")[0],
                    # do-all and fusion are loop-level SPMD; Table I's
                    # constant stays restricted to the paper's four rows
                    "SPMD" if label in ("Do-all", "Fusion") else "?",
                ),
                lines_touched=touched,
            )
        )
    options.sort(key=lambda o: (-o.benefit_per_effort, o.effort, o.label))
    return options
