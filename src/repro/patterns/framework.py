"""Pluggable detector pipeline: protocol, registry, context, evidence, trace.

The paper's workflow (PET hotspots → CU graphs → Section III detectors) is
expressed here as a pipeline of :class:`Detector` stages resolved from a
:class:`DetectorRegistry`.  Each stage reads shared inputs from an
:class:`AnalysisContext` (which memoizes artifacts several detectors need —
loop classifications, CU lists, CU graphs, reduction candidates), writes its
findings into an :class:`AnalysisResult`, and reports *why* candidates were
accepted or rejected as structured :class:`Evidence` carrying the deciding
threshold.  Per-stage wall-clock and counters land in an
:class:`AnalysisTrace` attached to the result.

Adding a detector means subclassing :class:`Detector`, declaring its
``requires`` (stage dependencies are resolved topologically, registration
order breaking ties), and registering it — no engine changes:

    registry = default_registry()
    registry.register(MyDetector())
    result = run_detectors(ctx, registry)

The thresholds that decide candidate fate live here so evidence can name
them; :mod:`repro.patterns.engine` re-exports them for compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.lang.analysis import is_recursive
from repro.lang.ast_nodes import Program
from repro.obs.metrics import get_registry
from repro.obs.tracing import Span, ensure_tracer
from repro.patterns.result import (
    FusionCandidate,
    GeometricDecomposition,
    LoopClass,
    MultiLoopPipeline,
    ReductionCandidate,
    TaskParallelism,
)
from repro.profiling.hotspots import Hotspot
from repro.profiling.model import Profile

#: A task-parallelism result is "interesting" when the region actually
#: splits into parallel work: at least this estimated speedup.
MIN_TASK_SPEEDUP = 1.3

#: A pipeline below this efficiency factor makes loop y wait for most of
#: loop x — not worth reporting as the program's primary pattern.
MIN_PIPELINE_EFFICIENCY = 0.5

#: Minimum instructions per region activation (per iteration for loops)
#: for task parallelism to be worth forking — statement-level concurrency
#: inside an innermost loop body (bicg's two accumulations) is below any
#: sensible task grain.  Recursive regions are exempt: their tasks are
#: whole subtrees.
MIN_TASK_GRAIN = 300.0

#: A task-parallel region needs at least this many *significant* concurrent
#: tasks (each ≥8 % of the region's CU weight) to be worth a fork.
MIN_SIGNIFICANT_TASKS = 2


# ---------------------------------------------------------------------------
# evidence and trace
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Evidence:
    """Why one candidate was accepted or rejected, with the deciding rule.

    ``threshold`` names the constant that decided a rejection (e.g.
    ``"MIN_PIPELINE_EFFICIENCY"``); ``threshold_value`` is its value at
    decision time and ``observed`` the candidate's measured value, so a
    report can print ``efficiency 0.03 < MIN_PIPELINE_EFFICIENCY 0.5``
    without re-running anything.
    """

    detector: str
    kind: str  # 'loop' | 'pipeline' | 'fusion' | 'task' | 'geometric' | 'reduction'
    regions: tuple[int, ...]
    status: str  # 'accepted' | 'rejected'
    reason: str  # machine-readable, e.g. 'efficiency-below-threshold'
    threshold: str | None = None
    threshold_value: float | None = None
    observed: float | None = None
    detail: str = ""

    @property
    def accepted(self) -> bool:
        return self.status == "accepted"


@dataclass
class StageTrace:
    """Telemetry for one detector stage: wall clock plus counters."""

    detector: str
    stage: str
    wall_time_s: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)

    def count(self, key: str, delta: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + delta


@dataclass
class AnalysisTrace:
    """Per-stage telemetry and the full evidence stream of one analysis."""

    stages: list[StageTrace] = field(default_factory=list)
    evidence: list[Evidence] = field(default_factory=list)
    #: hierarchical wall-clock spans (parse, profile, cache reads, one per
    #: detector stage) from :mod:`repro.obs.tracing`; serialized as the
    #: optional ``trace.spans`` extension block of the analysis document
    spans: list[Span] = field(default_factory=list)

    def stage(self, detector: str) -> StageTrace | None:
        for st in self.stages:
            if st.detector == detector:
                return st
        return None

    def for_detector(self, detector: str) -> list[Evidence]:
        return [ev for ev in self.evidence if ev.detector == detector]

    def accepted(self) -> list[Evidence]:
        return [ev for ev in self.evidence if ev.accepted]

    def rejected(self) -> list[Evidence]:
        return [ev for ev in self.evidence if not ev.accepted]

    @property
    def total_wall_time_s(self) -> float:
        return sum(st.wall_time_s for st in self.stages)


# ---------------------------------------------------------------------------
# context: shared inputs + memoized artifacts
# ---------------------------------------------------------------------------


@dataclass
class AnalysisContext:
    """Inputs every detector reads, plus memoized shared artifacts.

    Several detectors quote the same sub-analyses — loop classification is
    needed by the loop-classes stage, both pipeline stages, and geometric
    decomposition; CU lists/graphs by task parallelism.  The context
    computes each artifact once and hands out the cached object.
    """

    program: Program
    profile: Profile
    hotspots: list[Hotspot]
    hotspot_threshold: float = 0.10
    min_pairs: int = 3
    _loop_classes: dict[int, LoopClass] = field(default_factory=dict, repr=False)
    _reductions: dict[int, list[ReductionCandidate]] = field(
        default_factory=dict, repr=False
    )
    _cus: dict[int, list] = field(default_factory=dict, repr=False)
    _cu_graphs: dict[int, object] = field(default_factory=dict, repr=False)
    _hotspot_regions: set[int] | None = field(default=None, repr=False)

    @property
    def hotspot_regions(self) -> set[int]:
        if self._hotspot_regions is None:
            self._hotspot_regions = {h.region for h in self.hotspots}
        return self._hotspot_regions

    def loop_class(self, region: int) -> LoopClass:
        """Memoized :func:`repro.patterns.doall.classify_loop`."""
        lc = self._loop_classes.get(region)
        if lc is None:
            from repro.patterns.doall import classify_loop

            lc = classify_loop(self.program, self.profile, region)
            self._loop_classes[region] = lc
        return lc

    def reductions(self, loop: int) -> list[ReductionCandidate]:
        """Memoized :func:`repro.patterns.reduction.detect_reductions`."""
        cached = self._reductions.get(loop)
        if cached is None:
            from repro.patterns.reduction import detect_reductions

            cached = detect_reductions(self.program, self.profile, loop)
            self._reductions[loop] = cached
        return cached

    def cus(self, region: int) -> list:
        """Memoized :func:`repro.cu.detect.detect_cus`."""
        cached = self._cus.get(region)
        if cached is None:
            from repro.cu.detect import detect_cus

            cached = detect_cus(self.program, region)
            self._cus[region] = cached
        return cached

    def cu_graph(self, region: int, include_control: bool = True):
        """Memoized :func:`repro.cu.graph.build_cu_graph` (control edges on)."""
        if not include_control:  # non-default variants are not cached
            from repro.cu.graph import build_cu_graph

            return build_cu_graph(
                self.cus(region), self.profile, region, include_control=False
            )
        cached = self._cu_graphs.get(region)
        if cached is None:
            from repro.cu.graph import build_cu_graph

            cached = build_cu_graph(
                self.cus(region), self.profile, region, include_control=True
            )
            self._cu_graphs[region] = cached
        return cached


# ---------------------------------------------------------------------------
# result
# ---------------------------------------------------------------------------


@dataclass
class AnalysisResult:
    """Everything the detectors found for one program."""

    program: Program
    profile: Profile
    hotspots: list[Hotspot]
    loop_classes: dict[int, LoopClass] = field(default_factory=dict)
    pipelines: list[MultiLoopPipeline] = field(default_factory=list)
    fusions: list[FusionCandidate] = field(default_factory=list)
    tasks: dict[int, TaskParallelism] = field(default_factory=dict)
    geometric: list[GeometricDecomposition] = field(default_factory=list)
    reductions: dict[int, list[ReductionCandidate]] = field(default_factory=dict)
    #: wavefront / skewed-pipeline shapes (an extension beyond the paper's
    #: six patterns — never part of the Table III primary label)
    wavefronts: list = field(default_factory=list)
    trace: AnalysisTrace | None = None
    _hotspot_regions_cache: set[int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def hotspot_regions(self) -> set[int]:
        if self._hotspot_regions_cache is None:
            self._hotspot_regions_cache = {h.region for h in self.hotspots}
        return self._hotspot_regions_cache

    def clean_pipelines(self) -> list[MultiLoopPipeline]:
        """Pipelines implementable as a two-stage schedule: loop y depends
        on no loop other than x, and the efficiency factor clears
        :data:`MIN_PIPELINE_EFFICIENCY`."""
        return evaluate_clean_pipelines(self)[0]

    def best_task_parallelism(self) -> TaskParallelism | None:
        """The most promising task-parallel hotspot, if any.

        A region is interesting when at least two CUs can actually run
        concurrently (an antichain of the CU graph) and the work/span ratio
        clears :data:`MIN_TASK_SPEEDUP`.
        """
        return evaluate_task_candidates(self)[0]

    def to_json(self, pretty: bool = False) -> str:
        """Serialize to the versioned analysis schema (see
        :mod:`repro.patterns.schema`)."""
        from repro.patterns.schema import analysis_to_json

        return analysis_to_json(self, pretty=pretty)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        """Rebuild a result from :meth:`to_json` output."""
        from repro.patterns.schema import analysis_from_json

        return analysis_from_json(text)


# ---------------------------------------------------------------------------
# candidate evaluation (the thresholds, with evidence)
# ---------------------------------------------------------------------------


def evaluate_clean_pipelines(
    result: AnalysisResult,
) -> tuple[list[MultiLoopPipeline], list[Evidence]]:
    """Apply the clean-pipeline gates, recording the deciding rule per pair.

    A pipeline is *clean* when loop y has no source loop other than x and
    the efficiency factor clears :data:`MIN_PIPELINE_EFFICIENCY` — the
    exact predicate Table III's "Multi-loop pipeline" label quotes.
    """
    sources: dict[int, set[int]] = {}
    for p in result.pipelines:
        sources.setdefault(p.loop_y, set()).add(p.loop_x)
    clean: list[MultiLoopPipeline] = []
    evidence: list[Evidence] = []
    for p in result.pipelines:
        regions = (p.loop_x, p.loop_y)
        srcs = sources.get(p.loop_y, set())
        if srcs != {p.loop_x}:
            evidence.append(
                Evidence(
                    detector="pipelines",
                    kind="pipeline",
                    regions=regions,
                    status="rejected",
                    reason="multi-source-consumer",
                    threshold="SINGLE_SOURCE",
                    threshold_value=1.0,
                    observed=float(len(srcs)),
                    detail=f"loop {p.loop_y} consumes {sorted(srcs)}",
                )
            )
            continue
        if p.efficiency < MIN_PIPELINE_EFFICIENCY:
            evidence.append(
                Evidence(
                    detector="pipelines",
                    kind="pipeline",
                    regions=regions,
                    status="rejected",
                    reason="efficiency-below-threshold",
                    threshold="MIN_PIPELINE_EFFICIENCY",
                    threshold_value=MIN_PIPELINE_EFFICIENCY,
                    observed=p.efficiency,
                    detail=f"e={p.efficiency:.3f} (a={p.a:.3f}, b={p.b:.3f})",
                )
            )
            continue
        clean.append(p)
        evidence.append(
            Evidence(
                detector="pipelines",
                kind="pipeline",
                regions=regions,
                status="accepted",
                reason="clean-two-stage-schedule",
                threshold="MIN_PIPELINE_EFFICIENCY",
                threshold_value=MIN_PIPELINE_EFFICIENCY,
                observed=p.efficiency,
            )
        )
    return clean, evidence


def task_grain(
    result: AnalysisResult, tp: TaskParallelism
) -> tuple[bool, float | None, str]:
    """The grain gate of :data:`MIN_TASK_GRAIN` with its measured value.

    Returns ``(passes, grain, why)`` where *grain* is instructions per
    activation (``None`` for the recursive exemption and unknown regions)
    and *why* is ``'recursive'``, ``'grain'``, or ``'unknown-region'``.
    """
    reg = result.program.regions.get(tp.region)
    if reg is None:
        return False, None, "unknown-region"
    if reg.kind == "function":
        if result.program.has_function(reg.function) and is_recursive(
            result.program.function(reg.function), result.program
        ):
            return True, None, "recursive"  # tasks are whole recursive subtrees
        invocations = sum(
            n.invocations for n in result.profile.pet.walk() if n.region == tp.region
        ) if result.profile.pet else 1
        grain = result.profile.region_cost(tp.region) / max(1, invocations)
    else:
        trips = result.profile.trip_count(tp.region)
        grain = result.profile.region_cost(tp.region) / max(1, trips)
    return grain >= MIN_TASK_GRAIN, grain, "grain"


def evaluate_task_candidates(
    result: AnalysisResult,
) -> tuple[TaskParallelism | None, list[Evidence]]:
    """Apply the task-parallelism gates per hotspot, recording evidence.

    Gates run in the order speedup → significant-task count → grain, and
    the first failing gate decides the rejection; among survivors the
    highest estimated speedup wins (first-encountered on ties, preserving
    hotspot order).
    """
    best: TaskParallelism | None = None
    evidence: list[Evidence] = []
    for tp in result.tasks.values():
        regions = (tp.region,)
        if tp.estimated_speedup < MIN_TASK_SPEEDUP:
            evidence.append(
                Evidence(
                    detector="tasks",
                    kind="task",
                    regions=regions,
                    status="rejected",
                    reason="speedup-below-threshold",
                    threshold="MIN_TASK_SPEEDUP",
                    threshold_value=MIN_TASK_SPEEDUP,
                    observed=tp.estimated_speedup,
                )
            )
            continue
        significant = len(tp.significant_tasks())
        if significant < MIN_SIGNIFICANT_TASKS:
            evidence.append(
                Evidence(
                    detector="tasks",
                    kind="task",
                    regions=regions,
                    status="rejected",
                    reason="too-few-significant-tasks",
                    threshold="MIN_SIGNIFICANT_TASKS",
                    threshold_value=float(MIN_SIGNIFICANT_TASKS),
                    observed=float(significant),
                )
            )
            continue
        passes, grain, why = task_grain(result, tp)
        if not passes:
            evidence.append(
                Evidence(
                    detector="tasks",
                    kind="task",
                    regions=regions,
                    status="rejected",
                    reason=(
                        "grain-below-threshold" if why == "grain" else why
                    ),
                    threshold="MIN_TASK_GRAIN",
                    threshold_value=MIN_TASK_GRAIN,
                    observed=grain,
                )
            )
            continue
        evidence.append(
            Evidence(
                detector="tasks",
                kind="task",
                regions=regions,
                status="accepted",
                reason="recursive-exempt" if why == "recursive" else "candidate",
                threshold="MIN_TASK_SPEEDUP",
                threshold_value=MIN_TASK_SPEEDUP,
                observed=tp.estimated_speedup,
            )
        )
        if best is None or tp.estimated_speedup > best.estimated_speedup:
            best = tp
    return best, evidence


# ---------------------------------------------------------------------------
# detector protocol and registry
# ---------------------------------------------------------------------------


class Detector:
    """One pipeline stage.  Subclass, set the class attributes, implement
    :meth:`run`.

    ``requires`` names detectors that must run first; the registry resolves
    the partial order topologically with registration order breaking ties,
    so independent stages keep a deterministic sequence.
    """

    #: unique registry key
    name: str = ""
    #: human-readable stage group shown in traces (defaults to ``name``)
    stage: str = ""
    #: names of detectors that must have run before this one
    requires: tuple[str, ...] = ()

    def run(
        self, ctx: AnalysisContext, result: AnalysisResult, trace: StageTrace
    ) -> list[Evidence]:
        """Populate *result* from *ctx*; return this stage's evidence.

        Counters go on *trace* (``trace.count("candidates")``); wall time
        is measured by the runner.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Detector {self.name} requires={list(self.requires)}>"


class DetectorRegistry:
    """Ordered, dependency-aware collection of detectors."""

    def __init__(self) -> None:
        self._detectors: dict[str, Detector] = {}

    def register(self, detector: Detector, replace: bool = False) -> Detector:
        if not detector.name:
            raise ValueError("detector must set a non-empty name")
        if detector.name in self._detectors and not replace:
            raise ValueError(f"detector {detector.name!r} is already registered")
        self._detectors[detector.name] = detector
        return detector

    def unregister(self, name: str) -> None:
        del self._detectors[name]

    def get(self, name: str) -> Detector:
        return self._detectors[name]

    def __contains__(self, name: str) -> bool:
        return name in self._detectors

    def __len__(self) -> int:
        return len(self._detectors)

    def __iter__(self) -> Iterator[Detector]:
        return iter(self._detectors.values())

    def names(self) -> list[str]:
        return list(self._detectors)

    def ordered(self) -> list[Detector]:
        """Detectors in dependency order (Kahn), registration order breaking
        ties; raises on unknown requirements and dependency cycles."""
        order = list(self._detectors)
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = {name: [] for name in order}
        for name in order:
            det = self._detectors[name]
            missing = [r for r in det.requires if r not in self._detectors]
            if missing:
                raise ValueError(
                    f"detector {name!r} requires unregistered detector(s) {missing}"
                )
            indegree[name] = len(set(det.requires))
            for req in set(det.requires):
                dependents[req].append(name)
        ready = [name for name in order if indegree[name] == 0]
        out: list[Detector] = []
        while ready:
            name = ready.pop(0)
            out.append(self._detectors[name])
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    # keep registration order among newly-ready stages
                    ready.append(dep)
            ready.sort(key=order.index)
        if len(out) != len(order):
            cyclic = sorted(set(order) - {d.name for d in out})
            raise ValueError(f"detector dependency cycle involving {cyclic}")
        return out


def default_registry() -> DetectorRegistry:
    """A fresh registry with the paper's six standard detectors, in the
    engine's historical order — loop classes, pipelines, fusion, tasks,
    geometric decomposition, reductions — plus the wavefront extension
    stage (whose findings stay out of the Table III primary label)."""
    from repro.patterns.doall import LoopClassesDetector
    from repro.patterns.fusion import FusionDetector
    from repro.patterns.geometric import GeometricDecompositionDetector
    from repro.patterns.pipeline import MultiLoopPipelineDetector
    from repro.patterns.reduction import ReductionDetector
    from repro.patterns.tasks import TaskParallelismDetector
    from repro.patterns.wavefront import WavefrontDetector

    registry = DetectorRegistry()
    registry.register(LoopClassesDetector())
    registry.register(MultiLoopPipelineDetector())
    registry.register(FusionDetector())
    registry.register(TaskParallelismDetector())
    registry.register(GeometricDecompositionDetector())
    registry.register(ReductionDetector())
    registry.register(WavefrontDetector())
    return registry


def run_detectors(
    ctx: AnalysisContext, registry: DetectorRegistry | None = None
) -> AnalysisResult:
    """Run every registered detector over *ctx* and collect the trace.

    Each stage runs inside a span (child of a ``detect`` root span on the
    thread's current tracer, if an outer layer — ``analyze``, the service
    executor — installed one) and reports its wall clock into the
    process-wide ``repro_detector_stage_seconds`` histogram, so per-stage
    latency is observable both per analysis (``trace.spans``) and in
    aggregate (``/v1/metrics``).
    """
    if registry is None:
        registry = default_registry()
    result = AnalysisResult(
        program=ctx.program, profile=ctx.profile, hotspots=list(ctx.hotspots)
    )
    metrics = get_registry()
    stage_seconds = metrics.histogram(
        "repro_detector_stage_seconds",
        "Wall-clock seconds of one detector pipeline stage",
        labelnames=("stage",),
    )
    trace = AnalysisTrace()
    with ensure_tracer() as tracer:
        with tracer.span("detect", hotspots=len(ctx.hotspots)):
            for detector in registry.ordered():
                stage = StageTrace(
                    detector=detector.name, stage=detector.stage or detector.name
                )
                with tracer.span(f"detector:{detector.name}") as sp:
                    t0 = time.perf_counter()
                    evidence = detector.run(ctx, result, stage) or []
                    stage.wall_time_s = time.perf_counter() - t0
                    sp.set(evidence=len(evidence))
                stage_seconds.labels(stage=stage.stage).observe(stage.wall_time_s)
                trace.stages.append(stage)
                trace.evidence.extend(evidence)
        # Everything closed so far — outer parse/profile/cache spans plus the
        # detect subtree; a still-open job-level root stays out of the
        # analysis document by construction.
        trace.spans = tracer.finished()
    metrics.counter(
        "repro_analyses_total", "Detector pipeline runs completed"
    ).inc()
    result.trace = trace
    return result
