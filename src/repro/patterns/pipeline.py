"""Multi-loop pipeline detection (Section III-A).

The profiler already recorded, for every pair of loops with a cross-loop
dependence, the ``(i_x, i_y)`` pairs of the *last* write iteration of loop x
and the *first* read iteration of loop y per memory location.  Here we

1. fit ``Y = aX + b`` over those pairs (Eq. 1),
2. compute the efficiency factor ``e`` (Eq. 2), and
3. attach each stage's do-all/reduction classification, since "the loops in
   each stage of a multi-loop pipeline may be parallelized using other
   parallel patterns".

Chains of more than two loops are reported pairwise, exactly as the paper's
tool does; :func:`pipeline_chains` assembles the pairwise reports into
n-stage chains.
"""

from __future__ import annotations

from typing import Callable

from repro.lang.ast_nodes import Program
from repro.patterns.doall import classify_loop
from repro.patterns.framework import (
    AnalysisContext,
    AnalysisResult,
    Detector,
    Evidence,
    StageTrace,
    evaluate_clean_pipelines,
)
from repro.patterns.regression import efficiency_factor, fit_iteration_pairs
from repro.patterns.result import LoopClass, MultiLoopPipeline
from repro.profiling.model import Profile


def detect_multiloop_pipelines(
    program: Program,
    profile: Profile,
    hotspots: set[int] | None = None,
    min_pairs: int = 3,
    classify: Callable[[int], LoopClass] | None = None,
) -> list[MultiLoopPipeline]:
    """Detect multi-loop pipelines between sibling loop pairs.

    *hotspots*, when given, restricts attention to pairs where both loops
    are hotspot regions (the paper gathers "all pairs of hotspot loops").
    ``min_pairs`` filters out incidental one-off dependences that cannot
    support a regression.  *classify* substitutes a memoized loop
    classifier (e.g. ``AnalysisContext.loop_class``) for the default
    per-call :func:`classify_loop`.
    """
    if classify is None:
        classify = lambda loop: classify_loop(program, profile, loop)  # noqa: E731
    results: list[MultiLoopPipeline] = []
    for (loop_x, loop_y), pairs in sorted(profile.pairs.items()):
        if hotspots is not None and (loop_x not in hotspots or loop_y not in hotspots):
            continue
        if len(pairs) < min_pairs:
            continue
        # A pipeline flows forward: loop x precedes loop y in serial order.
        # A "pair" whose writer loop lies lexically *after* the reader loop
        # is really a carried dependence of an enclosing loop (fdtd-2d's
        # hz(t-1) -> ey(t)), not a pipeline between the two loops.
        reg_x = program.regions.get(loop_x)
        reg_y = program.regions.get(loop_y)
        if reg_x is not None and reg_y is not None and reg_x.line > reg_y.line:
            continue
        fit = fit_iteration_pairs(pairs)
        trips_x = max(profile.max_trip(loop_x), 1)
        trips_y = max(profile.max_trip(loop_y), 1)
        e = efficiency_factor(fit.a, fit.b, trips_x, trips_y)
        results.append(
            MultiLoopPipeline(
                loop_x=loop_x,
                loop_y=loop_y,
                a=fit.a,
                b=fit.b,
                efficiency=e,
                n_pairs=fit.n,
                trips_x=trips_x,
                trips_y=trips_y,
                stage_x=classify(loop_x),
                stage_y=classify(loop_y),
            )
        )
    results.sort(key=lambda r: (r.loop_x, r.loop_y))
    return results


def pipeline_chains(results: list[MultiLoopPipeline]) -> list[list[int]]:
    """Assemble pairwise pipeline reports into maximal loop chains.

    A chain of n dependent loops yields n-1 pairwise reports (Section
    III-A); this helper recovers ``[x, y, z, ...]`` stage sequences for an
    n-stage pipeline implementation.
    """
    successor: dict[int, list[int]] = {}
    has_pred: set[int] = set()
    nodes: set[int] = set()
    for r in results:
        successor.setdefault(r.loop_x, []).append(r.loop_y)
        has_pred.add(r.loop_y)
        nodes.add(r.loop_x)
        nodes.add(r.loop_y)
    chains: list[list[int]] = []
    heads = sorted(n for n in nodes if n not in has_pred)
    for head in heads:
        chain = [head]
        seen = {head}
        cursor = head
        while cursor in successor:
            nxt = sorted(successor[cursor])[0]
            if nxt in seen:
                break
            chain.append(nxt)
            seen.add(nxt)
            cursor = nxt
        if len(chain) >= 2:
            chains.append(chain)
    return chains


class MultiLoopPipelineDetector(Detector):
    """Stage 2: pairwise pipeline fits between hotspot loops, with the
    clean-pipeline gates (single source, :data:`MIN_PIPELINE_EFFICIENCY`)
    evaluated up front so rejections land in the evidence trace."""

    name = "pipelines"
    stage = "pipelines"
    requires = ("loop-classes",)

    def run(
        self, ctx: AnalysisContext, result: AnalysisResult, trace: StageTrace
    ) -> list[Evidence]:
        result.pipelines = detect_multiloop_pipelines(
            ctx.program,
            ctx.profile,
            hotspots=ctx.hotspot_regions,
            min_pairs=ctx.min_pairs,
            classify=ctx.loop_class,
        )
        clean, evidence = evaluate_clean_pipelines(result)
        trace.counters["detected"] = len(result.pipelines)
        trace.counters["clean"] = len(clean)
        trace.counters["rejected"] = len(result.pipelines) - len(clean)
        return evidence
