"""Reduction detection — Algorithm 3 (Section III-D).

A loop variable is a reduction candidate when

1. it participates in an inter-iteration (loop-carried) RAW dependence of
   the loop, and
2. it is written at exactly one source line inside the loop's dynamic
   extent, and
3. it is read at exactly that same line inside the loop.

Because both conditions are evaluated over the *dynamic* access tables, the
pattern is found even when the accumulating statement lives in a callee
(Listing 9's ``sum_module``) — precisely where the static comparators of
Table VI fail.

As an extension beyond the paper (its future work), :func:`infer_operator`
identifies the associative operator at the reported line when the statement
has one of the recognizable shapes.
"""

from __future__ import annotations

from repro.lang.analysis import stmt_reads
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Call,
    Program,
    VarLV,
    VarRef,
)
from repro.patterns.framework import Detector
from repro.patterns.result import ReductionCandidate
from repro.profiling.model import RAW, WAW, Profile

_COMMUTATIVE = {"+", "*"}


def detect_reductions(
    program: Program, profile: Profile, loop: int
) -> list[ReductionCandidate]:
    """Run Algorithm 3 on one loop region; returns candidates in var order."""
    region = program.regions.get(loop)
    induction = set()
    if region is not None and region.node is not None and region.kind == "loop":
        induction = set(region.node.induction_vars)
        # Induction variables of loops nested inside are excluded as well —
        # their back-edge updates are loop bookkeeping, not reductions.
        inner = [
            r.node
            for r in program.regions.values()
            if r.kind == "loop" and _is_nested_in(program, r.region_id, loop)
        ]
        for node in inner:
            if node is not None:
                induction |= set(node.induction_vars)

    # The paper's pass instruments only the instructions *creating*
    # inter-iteration dependences (Section III-D), so the write/read line
    # sets come from the carried dependence records — not from every access
    # that happened to execute inside the loop's dynamic extent (a nested
    # recursive call's local initialization must not count).
    write_lines_of: dict[str, set[int]] = {}
    read_lines_of: dict[str, set[int]] = {}
    carried_raw_vars: set[str] = set()
    carried_waw_vars: set[str] = set()
    for dep in profile.deps:
        if dep.var in induction:
            continue
        if dep.carrier == loop:
            if dep.kind == RAW:
                carried_raw_vars.add(dep.var)
                write_lines_of.setdefault(dep.var, set()).add(dep.src_line)
                read_lines_of.setdefault(dep.var, set()).add(dep.dst_line)
            elif dep.kind == WAW:
                carried_waw_vars.add(dep.var)
                write_lines_of.setdefault(dep.var, set()).update(
                    (dep.src_line, dep.dst_line)
                )
            else:  # WAR
                read_lines_of.setdefault(dep.var, set()).add(dep.src_line)
                write_lines_of.setdefault(dep.var, set()).add(dep.dst_line)
        elif dep.region == loop and dep.carrier is None:
            # Loop-independent flow *within* the loop: a value consumed at
            # another line in the same iteration (``s += A[i]; B[i] = s;``
            # is a prefix sum, not a reduction).
            if dep.kind == RAW:
                read_lines_of.setdefault(dep.var, set()).add(dep.dst_line)
    out: list[ReductionCandidate] = []
    for var in sorted(carried_raw_vars):
        # Refinement over the paper's Algorithm 3 (DESIGN.md §5): a true
        # accumulator is *rewritten* every iteration, so its location also
        # shows a loop-carried WAW.  An array recurrence like
        # ``path[i] = path[i-1] + ...`` writes each location once (no
        # carried WAW) yet satisfies the single-line write/read test; the
        # WAW evidence filters it out.
        if var not in carried_waw_vars:
            continue
        write_lines = write_lines_of.get(var, set())
        if len(write_lines) != 1:
            continue
        read_lines = read_lines_of.get(var, set())
        if read_lines != write_lines:
            continue
        line = next(iter(write_lines))
        out.append(
            ReductionCandidate(
                loop=loop,
                var=var,
                line=line,
                operator=infer_operator(program, line, var),
            )
        )
    return out


def _is_nested_in(program: Program, inner: int, outer: int) -> bool:
    cursor = program.regions.get(inner)
    while cursor is not None and cursor.parent is not None:
        if cursor.parent == outer:
            return True
        cursor = program.regions.get(cursor.parent)
    return False


def infer_operator(program: Program, line: int, var: str) -> str | None:
    """Identify the reduction operator at *line*, if the shape is recognized.

    Recognized shapes (``v`` the reduction variable)::

        v += e;   v -= e;  v *= e;           -> '+', '-', '*'
        v = v + e;  v = e + v;  v = v * e;   -> '+', '*'
        v = min(v, e);  v = max(v, e);       -> 'min', 'max'
    """
    for stmt in program.stmts.values():
        if stmt.line != line or not isinstance(stmt, Assign):
            continue
        if not isinstance(stmt.target, VarLV) or stmt.target.name != var:
            continue
        if stmt.op in ("+=", "-=", "*="):
            if var in stmt_reads(stmt) - {var} or _mentions(stmt.value, var):
                return None  # v appears on the RHS too: not a simple reduction
            return stmt.op[0]
        if stmt.op == "=":
            value = stmt.value
            if isinstance(value, BinOp) and value.op in _COMMUTATIVE | {"-"}:
                left_is_var = isinstance(value.left, VarRef) and value.left.name == var
                right_is_var = isinstance(value.right, VarRef) and value.right.name == var
                if left_is_var != right_is_var:
                    if value.op == "-" and right_is_var:
                        return None  # v = e - v is not associative
                    other = value.right if left_is_var else value.left
                    if not _mentions(other, var):
                        return value.op
            if isinstance(value, Call) and value.name in ("min", "max"):
                var_args = [
                    arg
                    for arg in value.args
                    if isinstance(arg, VarRef) and arg.name == var
                ]
                if len(var_args) == 1:
                    return value.name
    return None


def _mentions(expr, var: str) -> bool:
    from repro.lang.ast_nodes import walk_exprs

    return any(isinstance(n, VarRef) and n.name == var for n in walk_exprs(expr))


class ReductionDetector(Detector):
    """Hotspot-scoped Algorithm 3: reduction candidates per hotspot loop."""

    name = "reductions"
    stage = "reductions"

    def run(self, ctx, result, trace):
        from repro.patterns.framework import Evidence

        evidence = []
        for hotspot in result.hotspots:
            if hotspot.kind != "loop":
                continue
            trace.count("hotspot-loops")
            candidates = ctx.reductions(hotspot.region)
            if candidates:
                result.reductions[hotspot.region] = candidates
                trace.count("candidates", len(candidates))
                evidence.extend(
                    Evidence(
                        detector=self.name,
                        kind="reduction",
                        regions=(hotspot.region,),
                        status="accepted",
                        reason="algorithm-3-candidate",
                        detail=f"{c.var} @ line {c.line} ({c.operator or '?'})",
                    )
                    for c in candidates
                )
        return evidence
