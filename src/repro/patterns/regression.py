"""Linear regression over iteration pairs and the efficiency factor.

Section III-A estimates the relationship between dependent iterations of two
loops with ordinary least squares, ``Y = aX + b`` (Eq. 1), and derives the
*multi-loop efficiency factor* ``e`` (Eq. 2) as the ratio of the area under
the fitted line to the area under a perfect pipeline's line.

The paper leaves the integration domain implicit.  We evaluate both areas in
*normalized* iteration space (DESIGN.md §5.1): with ``N_x``/``N_y`` the trip
counts of the two loops, the perfect line ``Y' = X'`` over ``[0, 1]`` has
area ½, and the fitted line becomes ``Y' = a'X' + b'`` with
``a' = a·N_x/N_y`` and ``b' = b/N_y``, clipped below at 0.  This reproduces
Table IV: ludcmp ``e = 1`` exactly, reg_detect ``e ≈ 0.99`` from ``b = -1``,
fluidanimate ``e ≈ 0.97`` from ``a = 0.05``.  Values above 1 (possible when
``b > 0``) mean the second loop barely waits (Table II's last row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RegressionFit:
    """OLS fit of ``Y = aX + b`` over iteration pairs."""

    a: float
    b: float
    n: int
    r2: float


def fit_iteration_pairs(pairs: list[tuple[int, int]]) -> RegressionFit:
    """Least-squares fit of Eq. 1 over ``(i_x, i_y)`` pairs.

    Degenerate inputs are handled conservatively: a single pair (or pairs
    with zero variance in X) yields ``a = 0`` with ``b`` at the mean of Y —
    i.e. "all of y depends on one point of x".
    """
    if not pairs:
        raise ValueError("cannot fit an empty pair list")
    xs = np.asarray([p[0] for p in pairs], dtype=np.float64)
    ys = np.asarray([p[1] for p in pairs], dtype=np.float64)
    n = len(pairs)
    if n == 1 or float(np.ptp(xs)) == 0.0:
        return RegressionFit(a=0.0, b=float(ys.mean()), n=n, r2=0.0)
    a, b = np.polyfit(xs, ys, 1)
    pred = a * xs + b
    ss_res = float(np.sum((ys - pred) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    # Snap to exact integer coefficients when the fit is numerically exact,
    # so perfect pipelines report a=1, b=0 rather than 0.9999999.
    if ss_res <= 1e-9 * max(1.0, ss_tot):
        a_round, b_round = round(a), round(b)
        if abs(a - a_round) < 1e-6:
            a = float(a_round)
        if abs(b - b_round) < 1e-6:
            b = float(b_round)
    return RegressionFit(a=float(a), b=float(b), n=n, r2=r2)


def efficiency_factor(a: float, b: float, trips_x: int, trips_y: int) -> float:
    """Eq. 2's efficiency factor ``e`` in normalized iteration space.

    ``e = 1`` is a perfect pipeline; ``e → 0`` means loop *y* waits for
    almost all of loop *x*; ``e > 1`` means the loops can run almost in
    parallel (first iterations of *y* depend on nothing).

    Formally: normalize both loops' iterations to [0, 1].  The fitted line
    says y-iteration ``v`` needs x-progress ``u_req(v) = (v - b')/a'``;
    since y executes in order, the effective frontier is the running
    maximum of ``u_req``.  ``e`` is the "overlap area"
    ``∫ (1 - u_eff(v)) dv`` relative to the perfect pipeline's ½.  For
    increasing lines this equals the paper's area-under-the-regression-line
    ratio; it additionally handles reversed (``a < 0``) and degenerate
    (``a = 0``) dependences, where y's first iterations need x's last work
    and ``e`` collapses to 0.
    """
    if trips_x <= 0 or trips_y <= 0:
        return 0.0
    a_n = a * trips_x / trips_y
    b_n = b / trips_y
    if a_n == 0.0:
        return 0.0
    if a_n < 0.0:
        # decreasing requirement: the in-order frontier is pinned at v = 0
        u0 = min(1.0, max(0.0, -b_n / a_n))
        return 2.0 * (1.0 - u0)
    # u_req crosses 0 at v = b_n and reaches 1 at v = a_n + b_n
    lo = min(1.0, max(0.0, b_n))
    hi = min(1.0, max(0.0, a_n + b_n))
    ready = lo  # u_req <= 0 there: those y iterations wait for nothing
    if hi > lo:
        ready += (hi - lo) - ((hi - b_n) ** 2 - (lo - b_n) ** 2) / (2.0 * a_n)
    return 2.0 * ready
