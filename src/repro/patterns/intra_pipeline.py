"""Intra-loop pipeline detection (extension).

The paper's multi-loop pipeline stretches *across* loops; the classic
pipeline lives *inside* one sequential loop: the body's CUs form stages,
each iteration flows through them, and loop-carried dependences are
tolerable as long as they point forward (or stay within a stage) — a
decoupled-software-pipelining view [Huang et al., CGO'10; cited as the
paper's reference 30].

A sequential loop is an intra-loop pipeline candidate when

1. its body splits into ≥ 2 CUs,
2. the intra-iteration CU graph is acyclic (stages = topological layers),
3. every loop-carried dependence is intra-stage or points to a later
   stage — a carried dependence *backward* into an earlier stage would
   stall the pipeline every iteration.

The estimated speedup is the balanced-stage bound: total weight over the
heaviest stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cu.detect import detect_cus
from repro.cu.graph import build_cu_graph, cu_weight
from repro.cu.model import CU
from repro.graphs.algorithms import topological_sort
from repro.graphs.digraph import DiGraph
from repro.lang.ast_nodes import Program
from repro.profiling.model import RAW, Profile


@dataclass
class IntraLoopPipeline:
    """A pipeline found inside one loop's body."""

    loop: int
    cus: list[CU]
    #: cu ids per stage, in flow order (topological layers)
    stages: list[list[int]] = field(default_factory=list)
    stage_weights: list[float] = field(default_factory=list)
    total_weight: float = 0.0

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def estimated_speedup(self) -> float:
        heaviest = max(self.stage_weights, default=0.0)
        if heaviest <= 0:
            return 1.0
        return self.total_weight / heaviest


def _topological_layers(graph: DiGraph) -> list[list[int]]:
    order = topological_sort(graph)
    level: dict[int, int] = {}
    for node in order:
        preds = graph.predecessors(node)
        level[node] = 1 + max((level[p] for p in preds), default=-1)
    layers: dict[int, list[int]] = {}
    for node, lvl in level.items():
        layers.setdefault(lvl, []).append(node)
    return [sorted(layers[lvl]) for lvl in sorted(layers)]


def detect_intra_loop_pipeline(
    program: Program, profile: Profile, loop: int
) -> IntraLoopPipeline | None:
    """Detect a pipeline inside the body of *loop*; None when not viable."""
    reg = program.regions.get(loop)
    if reg is None or reg.kind != "loop":
        return None
    cus = detect_cus(program, loop)
    if len(cus) < 2:
        return None
    graph = build_cu_graph(cus, profile, loop, include_control=False)
    try:
        layers = _topological_layers(graph)
    except ValueError:
        return None  # intra-iteration cycle: CUs are mutually entangled

    stage_of: dict[int, int] = {}
    for stage_i, layer in enumerate(layers):
        for cu_id in layer:
            stage_of[cu_id] = stage_i

    line_to_cu: dict[int, int] = {}
    for cu in cus:
        for line in cu.lines:
            line_to_cu.setdefault(line, cu.cu_id)

    # carried dependences must not flow backward across stages
    for dep in profile.deps:
        if dep.carrier != loop:
            continue
        src_cu = line_to_cu.get(dep.src_site)
        dst_cu = line_to_cu.get(dep.dst_site)
        if src_cu is None or dst_cu is None:
            continue
        if stage_of.get(src_cu, 0) > stage_of.get(dst_cu, 0):
            return None

    weights = {cu.cu_id: float(cu_weight(cu, profile)) for cu in cus}
    stage_weights = [sum(weights[c] for c in layer) for layer in layers]
    total = sum(stage_weights)
    if total <= 0:
        return None
    pipeline = IntraLoopPipeline(
        loop=loop,
        cus=cus,
        stages=layers,
        stage_weights=stage_weights,
        total_weight=total,
    )
    if pipeline.estimated_speedup < 1.2:
        return None  # one stage dominates: nothing to pipeline
    return pipeline
