"""Durable sqlite persistence behind the service job store.

The :class:`JobStore <repro.service.jobs.JobStore>` keeps its hot state in
memory (dict + deques under one condition variable); this module is the
write-through layer that makes that state survive a daemon restart.  Every
lifecycle transition upserts the job's full row — payload, timestamps,
result/error documents, coalescing links — into one sqlite database opened
in WAL mode, and a restarting store replays the table:

* terminal jobs come back whole (their result documents are served warm,
  no re-execution), bounded by the store's ``max_history``;
* ``queued``/``running`` jobs — work the dead daemon accepted but never
  finished — are reset to ``queued`` and re-enter the run queue, so a
  crash never silently drops an accepted submission (at-least-once
  execution semantics);
* the id counter resumes past the largest persisted id, keeping job ids
  monotonic across restarts.

Documents are stored as deterministic JSON text (sorted keys), so a result
written before a restart re-serializes byte-identically after it.

Like the JSONL transition log (which remains the human-greppable audit
trail), persistence is **best-effort**: a failed write bumps
:attr:`SqliteJobLog.errors` and the in-memory store keeps serving.  One
connection is shared by all store threads; the store's own lock already
serializes every call, so the connection is opened with
``check_same_thread=False`` and never used concurrently.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Any

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               INTEGER PRIMARY KEY,
    kind             TEXT NOT NULL,
    state            TEXT NOT NULL,
    payload          TEXT NOT NULL,
    submitted_at     REAL,
    started_at       REAL,
    finished_at      REAL,
    result           TEXT,
    error            TEXT,
    info             TEXT,
    correlation_id   TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    digest           TEXT NOT NULL DEFAULT '',
    coalesced_with   INTEGER,
    backend          TEXT NOT NULL DEFAULT 'thread'
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state);
CREATE INDEX IF NOT EXISTS jobs_digest ON jobs(digest);
"""


def _dump(doc: Any) -> str | None:
    """Deterministic JSON text for a document column (None stays NULL)."""
    if doc is None:
        return None
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=repr)


def _load(text: str | None) -> Any:
    return None if text is None else json.loads(text)


class SqliteJobLog:
    """One WAL-mode sqlite file holding every job the store has seen."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.errors = 0
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    @property
    def closed(self) -> bool:
        return self._conn is None

    def upsert(self, job) -> None:
        """Write *job*'s current row (insert or replace), best-effort."""
        row = (
            job.id,
            job.kind,
            job.state,
            _dump(job.payload),
            job.submitted_at,
            job.started_at,
            job.finished_at,
            _dump(job.result),
            _dump(job.error),
            _dump(job.info),
            job.correlation_id,
            int(job.cancel_requested),
            job.digest,
            job.coalesced_with,
            job.backend,
        )
        with self._lock:
            if self._conn is None:
                self.errors += 1
                return
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO jobs VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    row,
                )
                self._conn.commit()
            except (sqlite3.Error, ValueError, TypeError):
                self.errors += 1

    def delete(self, job_id: int) -> None:
        """Drop one job's row (history eviction), best-effort."""
        with self._lock:
            if self._conn is None:
                self.errors += 1
                return
            try:
                self._conn.execute("DELETE FROM jobs WHERE id = ?", (job_id,))
                self._conn.commit()
            except sqlite3.Error:
                self.errors += 1

    def load_rows(self) -> list[dict[str, Any]]:
        """Every persisted job as a plain dict, in id order.

        Raises on a corrupt/unreadable database — restore-time trouble
        should be loud, unlike steady-state writes.
        """
        with self._lock:
            if self._conn is None:
                raise RuntimeError("sqlite job log is closed")
            cursor = self._conn.execute(
                "SELECT id, kind, state, payload, submitted_at, started_at, "
                "finished_at, result, error, info, correlation_id, "
                "cancel_requested, digest, coalesced_with, backend "
                "FROM jobs ORDER BY id"
            )
            rows = cursor.fetchall()
        out = []
        for r in rows:
            out.append(
                {
                    "id": r[0],
                    "kind": r[1],
                    "state": r[2],
                    "payload": _load(r[3]) or {},
                    "submitted_at": r[4],
                    "started_at": r[5],
                    "finished_at": r[6],
                    "result": _load(r[7]),
                    "error": _load(r[8]),
                    "info": _load(r[9]) or {},
                    "correlation_id": r[10] or "",
                    "cancel_requested": bool(r[11]),
                    "digest": r[12] or "",
                    "coalesced_with": r[13],
                    "backend": r[14] or "thread",
                }
            )
        return out

    def close(self) -> None:
        """Release the connection; later writes count as errors."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.commit()
                    self._conn.close()
                except sqlite3.Error:
                    self.errors += 1
                self._conn = None
