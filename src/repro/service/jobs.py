"""Job store for the analysis service: lifecycle, coalescing, durability.

A :class:`JobStore` is the single source of truth the daemon's HTTP front
end and execution backend share.  Every submission becomes a :class:`Job`
with a monotonically increasing id and walks the lifecycle::

    queued -> running -> done | failed
    queued -> cancelled
    queued -> done | failed          (coalesced followers, see below)

State transitions happen under one lock, so a cancel can never race a
worker's claim: a queued job cancels immediately, and
:meth:`JobStore.claim` skips entries cancelled while waiting in the queue.
A *running* job is cancelled cooperatively — MiniC interpretation holds no
cancellation points, so ``DELETE /v1/jobs/<id>`` marks the job
``cancel_requested`` and the worker's completion is recorded as
``cancelled`` (its result document discarded) instead of ``done`` or
``failed``.  Only already-terminal jobs refuse cancellation.

**Digest-keyed coalescing.**  Every submission is content-addressed at
submit time by :func:`job_digest` — for ``source`` jobs the same SHA-256
the profile cache derives from source + entry + materialized inputs (plus
the detection threshold), for ``bench``/``sweep`` jobs the canonical JSON
of the payload.  While a job with the same digest is still in flight
(queued or running, cancel not requested), a new identical submission
does not enqueue new work: it becomes a *follower* carrying
``coalesced_with: <leader id>``, never claimed by a worker, and completed
in the same instant as its leader with the **same result document object**
(byte-identity across the N coalesced records is structural, not
re-computed).  Cancelling a follower detaches only that follower;
cancelling a queued leader promotes its oldest follower to run in its
place, so coalesced submitters never lose work to someone else's cancel.

**Admission control.**  With ``max_queue`` set, a submission that would
push the number of queued (non-follower) jobs past the bound raises
:class:`QueueFull` instead of enqueueing — the HTTP layer maps it to
``429`` with a ``Retry-After`` estimated from the store's run-time EMA.
Followers bypass the bound (they add no work).

**Durability.**  With ``db_path`` set, every transition is written through
to a WAL-mode sqlite database (:mod:`repro.service.store`); a restarting
store re-serves terminal results warm and re-enqueues jobs the dead
daemon left ``queued``/``running`` (``info.recovered`` marks them).  The
existing JSONL transition log is kept as the append-only audit trail.

Job records serialize through the versioned envelope of
:func:`repro.patterns.schema.job_record` (now carrying ``digest``,
``coalesced_with``, and ``backend``); a failed job's ``error`` field is
the :class:`~repro.runtime.parallel.FailedOutcome` document with its
``"failed": true`` marker, so service consumers reuse the sweep's failure
decoding unchanged.  History is bounded — terminal jobs beyond
``max_history`` are evicted oldest-first (queued and running jobs are
never evicted).

Telemetry: every transition emits a structured ``job.transition`` record
through a :class:`repro.obs.logs.JsonLogger`, each record carrying the
job's ``correlation_id``; and the store maintains the daemon's job
metrics — ``repro_jobs_{submitted,completed,failed,cancelled,coalesced,
rejected}_total`` counters plus the ``repro_job_queue_wait_seconds`` and
``repro_job_run_seconds{kind=}`` histograms — in the process-wide
registry scraped at ``/v1/metrics``.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.obs.logs import JsonLogger, new_correlation_id
from repro.obs.metrics import get_registry
from repro.patterns.schema import JOB_STATES, job_record
from repro.service.store import SqliteJobLog

#: Job kinds the executor knows how to run.
JOB_KINDS = ("source", "bench", "sweep")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class QueueFull(RuntimeError):
    """Submission rejected: the queue is at its admission-control bound."""

    def __init__(self, depth: int, max_queue: int) -> None:
        super().__init__(
            f"queue is full ({depth} queued, bound {max_queue}); retry later"
        )
        self.depth = depth
        self.max_queue = max_queue


def build_call_args(specs: Iterable[Sequence[str]], seed: int = 0) -> list:
    """Materialize one entry-function argument list from a portable spec.

    *specs* is an ordered sequence of ``(kind, value)`` pairs — the same
    left-to-right convention as the CLI's ``--scalar/--zeros/--rand``
    options, which delegate here — where ``kind`` is ``"scalar"``,
    ``"zeros"``, or ``"rand"`` and ``value`` is the option text (``"5"``,
    ``"A:40,40"``).  Random arrays come from a generator seeded with *seed*,
    so a spec is a complete, JSON-friendly description of the inputs: the
    service and the CLI build bit-identical argument sets from it.
    """
    rng = np.random.default_rng(seed)
    call_args: list = []
    for kind, value in specs:
        if kind == "scalar":
            call_args.append(float(value) if "." in value else int(value))
        elif kind in ("zeros", "rand"):
            name, _, shape_txt = value.partition(":")
            if not shape_txt:
                shape_txt = name
            shape = tuple(int(s) for s in shape_txt.split(",") if s)
            call_args.append(np.zeros(shape) if kind == "zeros" else rng.random(shape))
        else:
            raise ValueError(f"unknown argument kind {kind!r}")
    return call_args


def job_digest(kind: str, payload: dict[str, Any]) -> str:
    """Content address of the work one submission describes.

    Two submissions share a digest exactly when executing either would
    produce the same result document:

    * ``source`` — the profile cache's own content address
      (:func:`repro.profiling.cache.profile_cache_key` over source text,
      entry name, and the **materialized** argument sets, so spec + seed
      equality means bit-identical inputs) combined with the detection
      threshold;
    * ``bench`` / ``sweep`` — the canonical JSON of the payload (name or
      name list plus every fault-tolerance knob that could change which
      failure records appear).

    Raises :class:`ValueError` for a malformed ``args`` spec — submission
    time is where bad inputs should surface, not inside a worker.
    """
    h = hashlib.sha256()
    h.update(f"repro-job:{kind}\x00".encode())
    if kind == "source":
        from repro.profiling.cache import profile_cache_key
        from repro.profiling.hotspots import DEFAULT_THRESHOLD

        arg_sets = [build_call_args(payload.get("args", []), int(payload.get("seed", 0)))]
        h.update(
            profile_cache_key(
                payload.get("source", ""), payload.get("entry", ""), arg_sets
            ).encode()
        )
        h.update(
            f"\x00threshold={float(payload.get('threshold', DEFAULT_THRESHOLD))!r}".encode()
        )
    else:
        from repro.profiling.serialize import canonical_json

        h.update(canonical_json(dict(payload)).encode())
    return h.hexdigest()


def _public_payload(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    """The payload as exposed in job records: source text becomes a digest.

    Raw MiniC source can be large and records are listed, persisted, and
    polled repeatedly, so ``source`` jobs carry a sha256 + line count in
    place of the text (the analysis result embeds the source anyway).
    """
    public = {k: v for k, v in payload.items() if k != "source"}
    if kind == "source":
        source = payload.get("source", "")
        public["source_sha256"] = hashlib.sha256(source.encode("utf-8")).hexdigest()
        public["source_lines"] = source.count("\n") + bool(source)
    return public


@dataclass
class Job:
    """One submission and everything the service knows about it."""

    id: int
    kind: str
    payload: dict[str, Any]
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: analysis / outcome document(s) once the job is ``done``
    result: Any = None
    #: :class:`FailedOutcome` document once the job is ``failed``
    error: dict[str, Any] | None = None
    #: side-channel facts that must not perturb the result document
    #: (e.g. ``profile_cache_hit``, ``recovered``)
    info: dict[str, Any] = field(default_factory=dict)
    #: opaque id correlating this job's log records across every layer
    #: (client submission -> store transitions -> worker -> run_one);
    #: client-generated when provided, otherwise minted at submit time
    correlation_id: str = ""
    #: set when a cancel arrived while the job was already running; the
    #: worker's completion is then recorded as ``cancelled``
    cancel_requested: bool = False
    #: content address of the work (see :func:`job_digest`)
    digest: str = ""
    #: leader job id when this submission coalesced onto in-flight work
    coalesced_with: int | None = None
    #: execution backend that runs (or ran) this job's analysis
    backend: str = "thread"

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """The versioned job-record envelope for this job.

        ``include_result=False`` gives the listing summary: everything but
        the (potentially multi-megabyte) result document.
        """
        doc: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "payload": _public_payload(self.kind, self.payload),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "info": dict(self.info),
            "correlation_id": self.correlation_id,
            "cancel_requested": self.cancel_requested,
            "digest": self.digest,
            "coalesced_with": self.coalesced_with,
            "backend": self.backend,
        }
        if include_result:
            doc["result"] = self.result
        return job_record(doc)


class JobStore:
    """Thread-safe job registry + FIFO queue with coalescing + durability."""

    def __init__(
        self,
        max_history: int = 256,
        jsonl_path: str | None = None,
        logger: JsonLogger | None = None,
        db_path: str | None = None,
        max_queue: int | None = None,
        coalesce: bool = True,
        backend: str = "thread",
    ) -> None:
        self.max_history = max(1, max_history)
        self.jsonl_path = jsonl_path
        self.max_queue = max_queue
        self.coalesce = coalesce
        self.backend = backend
        if logger is None:
            logger = JsonLogger(path=jsonl_path) if jsonl_path else JsonLogger()
        self._log = logger
        self._cond = threading.Condition()
        self._jobs: dict[int, Job] = {}
        self._queue: deque[int] = deque()
        self._terminal: deque[int] = deque()
        self._ids = itertools.count(1)
        self._closed = False
        #: digest -> id of the in-flight leader new submissions attach to
        self._inflight: dict[str, int] = {}
        #: leader id -> follower ids awaiting its result
        self._followers: dict[int, list[int]] = {}
        self.submitted = 0
        self.evicted = 0
        self.coalesced = 0
        self.rejected = 0
        self.recovered = 0
        #: EMA of recent run times — the Retry-After estimator's input
        self.avg_run_s = 0.0
        metrics = get_registry()
        self._submitted_total = metrics.counter(
            "repro_jobs_submitted_total", "Jobs accepted into the queue"
        )
        self._completed_total = metrics.counter(
            "repro_jobs_completed_total", "Jobs finished in the done state"
        )
        self._failed_total = metrics.counter(
            "repro_jobs_failed_total", "Jobs finished in the failed state"
        )
        self._cancelled_total = metrics.counter(
            "repro_jobs_cancelled_total",
            "Jobs cancelled (while queued or cooperatively while running)",
        )
        self._coalesced_total = metrics.counter(
            "repro_jobs_coalesced_total",
            "Submissions attached to an identical in-flight job by digest",
        )
        self._rejected_total = metrics.counter(
            "repro_jobs_rejected_total",
            "Submissions rejected by admission control (queue at bound)",
        )
        self._queue_wait_seconds = metrics.histogram(
            "repro_job_queue_wait_seconds",
            "Seconds a job waited in the queue before a worker claimed it",
        )
        self._run_seconds = metrics.histogram(
            "repro_job_run_seconds",
            "Seconds a worker spent running a claimed job",
            labelnames=("kind",),
        )
        self._db = SqliteJobLog(db_path) if db_path else None
        if self._db is not None:
            self._restore()

    @property
    def persist_errors(self) -> int:
        """Transition-log appends that failed (disk full, unwritable path);
        the in-memory store keeps working — persistence is best-effort."""
        return self._log.errors

    @property
    def db_errors(self) -> int:
        """Failed sqlite write-throughs (best-effort, like the JSONL log)."""
        return self._db.errors if self._db is not None else 0

    @property
    def logger(self) -> JsonLogger:
        """The store's structured transition logger (shared sink)."""
        return self._log

    # -- durable restore ------------------------------------------------

    def _restore(self) -> None:
        """Replay the sqlite table into memory (constructor-time only).

        Terminal jobs come back whole (results served warm); interrupted
        ``queued``/``running`` jobs are reset to ``queued`` and re-enter
        the run queue with ``info.recovered`` set — unless a cancel was
        already requested, in which case the restart grants it.  Follower
        links are re-attached when the leader is also still in flight and
        dissolved (the follower runs on its own) when it is not.
        """
        rows = self._db.load_rows()
        max_id = 0
        interrupted: list[Job] = []
        for row in rows:
            max_id = max(max_id, row["id"])
            job = Job(**row)
            self._jobs[job.id] = job
            if job.state in TERMINAL_STATES:
                self._terminal.append(job.id)
            else:
                interrupted.append(job)
        leaders = {
            j.id for j in interrupted if j.coalesced_with is None and not j.cancel_requested
        }
        for job in interrupted:
            if job.cancel_requested:
                # the dead daemon never got to record the cancel; grant it now
                job.state = "cancelled"
                job.finished_at = time.time()
                job.result = None
                job.error = None
                self._terminal.append(job.id)
                self._db.upsert(job)
                continue
            job.state = "queued"
            job.started_at = None
            job.info["recovered"] = True
            self.recovered += 1
            if job.coalesced_with is not None and job.coalesced_with in leaders:
                self._followers.setdefault(job.coalesced_with, []).append(job.id)
            else:
                job.coalesced_with = None
                self._queue.append(job.id)
                if self.coalesce and job.digest:
                    self._inflight.setdefault(job.digest, job.id)
            self._db.upsert(job)
        while len(self._terminal) > self.max_history:
            evicted = self._terminal.popleft()
            if self._jobs.pop(evicted, None) is not None:
                self.evicted += 1
                self._db.delete(evicted)
        self._ids = itertools.count(max_id + 1)

    # -- submission / claiming ------------------------------------------

    def _queued_depth(self) -> int:
        """Queued non-follower jobs — the work the backend still owes."""
        return sum(
            1
            for job in self._jobs.values()
            if job.state == "queued" and job.coalesced_with is None
        )

    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        correlation_id: str | None = None,
    ) -> Job:
        """Enqueue a new job; returns it in the ``queued`` state.

        Identical in-flight work (same :func:`job_digest`) absorbs the
        submission as a follower instead of enqueueing a duplicate run.
        Raises :class:`QueueFull` when admission control rejects the
        submission and :class:`ValueError` for an unknown kind or a
        malformed ``args`` spec.

        *correlation_id* is normally minted by the submitting client so the
        caller can grep its own logs for the same id; one is generated here
        when absent so every job is correlatable.
        """
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}")
        digest = job_digest(kind, payload)
        with self._cond:
            if self._closed:
                raise RuntimeError("job store is closed")
            leader = None
            if self.coalesce:
                leader = self._jobs.get(self._inflight.get(digest, -1))
            if (
                leader is not None
                and leader.state in ("queued", "running")
                and not leader.cancel_requested
            ):
                job = Job(
                    id=next(self._ids),
                    kind=kind,
                    payload=dict(payload),
                    correlation_id=correlation_id or new_correlation_id(),
                    digest=digest,
                    coalesced_with=leader.id,
                    backend=self.backend,
                )
                self._jobs[job.id] = job
                self._followers.setdefault(leader.id, []).append(job.id)
                self.submitted += 1
                self.coalesced += 1
                self._submitted_total.inc()
                self._coalesced_total.inc()
                self._persist(job)
                return job
            if self.max_queue is not None:
                depth = self._queued_depth()
                if depth >= self.max_queue:
                    self.rejected += 1
                    self._rejected_total.inc()
                    raise QueueFull(depth, self.max_queue)
            job = Job(
                id=next(self._ids),
                kind=kind,
                payload=dict(payload),
                correlation_id=correlation_id or new_correlation_id(),
                digest=digest,
                backend=self.backend,
            )
            self._jobs[job.id] = job
            self._queue.append(job.id)
            if self.coalesce:
                self._inflight[digest] = job.id
            self.submitted += 1
            self._submitted_total.inc()
            self._persist(job)
            self._cond.notify()
        return job

    def claim(self, timeout: float | None = None) -> Job | None:
        """Pop the next queued job and mark it ``running`` atomically.

        Blocks up to *timeout* seconds (forever when None) for work; returns
        None on timeout or once the store is closed.  Jobs cancelled while
        queued are skipped here — cancellation and claiming share the lock.
        Followers never enter the queue, so they are never claimed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._queue:
                    job = self._jobs.get(self._queue.popleft())
                    if job is None or job.state != "queued":
                        continue
                    job.state = "running"
                    job.started_at = time.time()
                    self._queue_wait_seconds.observe(
                        max(0.0, job.started_at - job.submitted_at)
                    )
                    self._persist(job)
                    return job
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def close(self) -> None:
        """Stop accepting submissions and wake every waiting claimer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def dispose(self) -> None:
        """Close the store and release the sqlite connection.

        In-flight workers finishing after this point keep the in-memory
        store coherent; their sqlite writes land as counted errors — the
        same crash-consistency a real kill gives, which is exactly what
        the restart path is built to absorb.
        """
        self.close()
        if self._db is not None:
            self._db.close()

    # -- transitions ----------------------------------------------------

    def finish(self, job_id: int, result: Any, info: dict[str, Any] | None = None) -> Job:
        """Transition a running job to ``done`` with its result document."""
        return self._complete(job_id, "done", result=result, info=info)

    def fail(self, job_id: int, error: dict[str, Any], info: dict[str, Any] | None = None) -> Job:
        """Transition a running job to ``failed`` with its failure record."""
        return self._complete(job_id, "failed", error=error, info=info)

    def cancel(self, job_id: int) -> Job:
        """Cancel a job that has not finished yet.

        A *queued* job becomes ``cancelled`` immediately; a queued
        **leader** with coalesced followers promotes its oldest follower
        into the queue first, so the shared work still runs for everyone
        else.  A *running* job is cancelled cooperatively: MiniC
        interpretation holds no cancellation points, so the job is marked
        ``cancel_requested`` (its state stays ``running``) and the
        worker's eventual completion is recorded as ``cancelled`` with the
        result discarded — attached followers still receive the real
        outcome.  Raises :class:`KeyError` for an unknown id and
        :class:`ValueError` for a job already in a terminal state.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id}")
            if job.state == "queued":
                if job.coalesced_with is not None:
                    # follower: detach quietly, the leader keeps running
                    siblings = self._followers.get(job.coalesced_with)
                    if siblings and job.id in siblings:
                        siblings.remove(job.id)
                else:
                    self._promote_follower(job)
                job.state = "cancelled"
                job.finished_at = time.time()
                self._cancelled_total.inc()
                self._retire(job)
                return job
            if job.state == "running":
                if not job.cancel_requested:
                    job.cancel_requested = True
                    self._persist(job, event="job.cancel_requested")
                    if self._db is not None:
                        self._db.upsert(job)
                return job
            raise ValueError(f"job {job_id} is {job.state}, already terminal")

    def _promote_follower(self, leader: Job) -> None:
        """Hand a cancelled queued leader's work to its oldest follower."""
        if self._inflight.get(leader.digest) == leader.id:
            self._inflight.pop(leader.digest, None)
        followers = self._followers.pop(leader.id, [])
        promoted: Job | None = None
        rest: list[int] = []
        for fid in followers:
            f = self._jobs.get(fid)
            if f is None or f.state != "queued":
                continue
            if promoted is None:
                promoted = f
            else:
                f.coalesced_with = promoted.id
                rest.append(fid)
        if promoted is None:
            return
        promoted.coalesced_with = None
        self._queue.append(promoted.id)
        if self.coalesce:
            self._inflight[promoted.digest] = promoted.id
        if rest:
            self._followers[promoted.id] = rest
        self._persist(promoted, event="job.promoted")
        self._cond.notify()

    def _complete(
        self,
        job_id: int,
        state: str,
        result: Any = None,
        error: dict[str, Any] | None = None,
        info: dict[str, Any] | None = None,
    ) -> Job:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id}")
            if job.state != "running":
                raise ValueError(f"job {job_id} is {job.state}, not running")
            job.finished_at = time.time()
            if job.started_at is not None:
                run_s = max(0.0, job.finished_at - job.started_at)
                self._run_seconds.labels(kind=job.kind).observe(run_s)
                self.avg_run_s = (
                    run_s if self.avg_run_s == 0.0
                    else 0.8 * self.avg_run_s + 0.2 * run_s
                )
            if job.cancel_requested:
                # the run completed, but a cancel arrived mid-flight: the
                # outcome the caller no longer wants is discarded, only what
                # it *was* is kept for the record
                job.state = "cancelled"
                job.result = None
                job.error = None
                job.info["completed_as"] = state
                self._cancelled_total.inc()
            else:
                job.state = state
                job.result = result
                job.error = error
                (self._completed_total if state == "done" else self._failed_total).inc()
            if info:
                job.info.update(info)
            if self._inflight.get(job.digest) == job.id:
                self._inflight.pop(job.digest, None)
            self._retire(job)
            # followers receive the run's real outcome — even when the
            # leader itself was cooperatively cancelled mid-flight, the
            # completed work belongs to everyone who coalesced onto it
            for fid in self._followers.pop(job.id, []):
                follower = self._jobs.get(fid)
                if follower is None or follower.state != "queued":
                    continue
                follower.state = state
                follower.started_at = job.started_at
                follower.finished_at = job.finished_at
                follower.result = result
                follower.error = error
                (self._completed_total if state == "done" else self._failed_total).inc()
                self._retire(follower)
            return job

    def _retire(self, job: Job) -> None:
        """Record a terminal transition: persist, then bound the history."""
        self._persist(job)
        self._terminal.append(job.id)
        while len(self._terminal) > self.max_history:
            evicted = self._terminal.popleft()
            if self._jobs.pop(evicted, None) is not None:
                self.evicted += 1
                if self._db is not None:
                    self._db.delete(evicted)

    # -- queries --------------------------------------------------------

    def get(self, job_id: int) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def list_jobs(
        self,
        state: str | None = None,
        kind: str | None = None,
        limit: int | None = None,
    ) -> list[Job]:
        """Retained jobs **newest first** (descending id), optionally filtered.

        One documented order whether or not *limit* is given: the listing
        always starts at the most recent submission, and *limit* merely
        truncates it — ``limit=N`` is "the last N", ``limit=0`` is
        explicitly zero rows, ``limit=None`` is everything.  (The listing
        used to flip between oldest-first and newest-first depending on
        whether a limit was set; pagination must never change order.)
        """
        with self._cond:
            jobs = [
                job
                for job_id in sorted(self._jobs, reverse=True)
                if (job := self._jobs[job_id])
                and (state is None or job.state == state)
                and (kind is None or job.kind == kind)
            ]
        if limit is not None:
            jobs = jobs[: max(0, limit)]
        return jobs

    def counts(self) -> dict[str, Any]:
        """Queue-depth and per-state tallies for ``/v1/stats``."""
        with self._cond:
            states = {s: 0 for s in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "states": states,
                "queue_depth": self._queued_depth(),
                "submitted": self.submitted,
                "retained": len(self._jobs),
                "evicted": self.evicted,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "recovered": self.recovered,
                "persist_errors": self.persist_errors,
                "db_errors": self.db_errors,
            }

    # -- persistence ----------------------------------------------------

    def _persist(self, job: Job, event: str = "job.transition") -> None:
        """Record *job*'s current state: sqlite write-through + log line.

        The sqlite row (when a ``db_path`` was given) carries the full
        job including its result document — that is what a restart serves
        warm.  The structured log line is the human/audit view: one JSON
        object with timestamp, level, *event*, the job's correlation id,
        and the versioned job-record envelope under ``record`` (result
        document excluded — results can be megabytes and are fetchable
        from the store).  Both are best-effort.
        """
        if self._db is not None:
            self._db.upsert(job)
        if not self._log.active:
            return
        self._log.info(
            event,
            job_id=job.id,
            correlation_id=job.correlation_id,
            state=job.state,
            kind=job.kind,
            record=job.to_dict(include_result=False),
        )
