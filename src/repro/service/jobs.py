"""Job store for the analysis service: lifecycle, history, persistence.

A :class:`JobStore` is the single source of truth the daemon's HTTP front
end and worker pool share.  Every submission becomes a :class:`Job` with a
monotonically increasing id and walks the lifecycle::

    queued -> running -> done | failed
    queued -> cancelled

State transitions happen under one lock, so a cancel can never race a
worker's claim: ``DELETE /v1/jobs/<id>`` succeeds only while the job is
still queued, and :meth:`JobStore.claim` skips entries cancelled while
waiting in the queue.

Job records serialize through the versioned envelope of
:func:`repro.patterns.schema.job_record`; a failed job's ``error`` field is
the :class:`~repro.runtime.parallel.FailedOutcome` document with its
``"failed": true`` marker, so service consumers reuse the sweep's failure
decoding unchanged.  History is bounded — terminal jobs beyond
``max_history`` are evicted oldest-first (queued and running jobs are never
evicted) — and optionally every transition is appended to a JSONL file, one
envelope per line, giving the daemon a crash-durable audit trail.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.patterns.schema import JOB_STATES, job_record

#: Job kinds the executor knows how to run.
JOB_KINDS = ("source", "bench", "sweep")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def build_call_args(specs: Iterable[Sequence[str]], seed: int = 0) -> list:
    """Materialize one entry-function argument list from a portable spec.

    *specs* is an ordered sequence of ``(kind, value)`` pairs — the same
    left-to-right convention as the CLI's ``--scalar/--zeros/--rand``
    options, which delegate here — where ``kind`` is ``"scalar"``,
    ``"zeros"``, or ``"rand"`` and ``value`` is the option text (``"5"``,
    ``"A:40,40"``).  Random arrays come from a generator seeded with *seed*,
    so a spec is a complete, JSON-friendly description of the inputs: the
    service and the CLI build bit-identical argument sets from it.
    """
    rng = np.random.default_rng(seed)
    call_args: list = []
    for kind, value in specs:
        if kind == "scalar":
            call_args.append(float(value) if "." in value else int(value))
        elif kind in ("zeros", "rand"):
            name, _, shape_txt = value.partition(":")
            if not shape_txt:
                shape_txt = name
            shape = tuple(int(s) for s in shape_txt.split(",") if s)
            call_args.append(np.zeros(shape) if kind == "zeros" else rng.random(shape))
        else:
            raise ValueError(f"unknown argument kind {kind!r}")
    return call_args


def _public_payload(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    """The payload as exposed in job records: source text becomes a digest.

    Raw MiniC source can be large and records are listed, persisted, and
    polled repeatedly, so ``source`` jobs carry a sha256 + line count in
    place of the text (the analysis result embeds the source anyway).
    """
    public = {k: v for k, v in payload.items() if k != "source"}
    if kind == "source":
        source = payload.get("source", "")
        public["source_sha256"] = hashlib.sha256(source.encode("utf-8")).hexdigest()
        public["source_lines"] = source.count("\n") + bool(source)
    return public


@dataclass
class Job:
    """One submission and everything the service knows about it."""

    id: int
    kind: str
    payload: dict[str, Any]
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: analysis / outcome document(s) once the job is ``done``
    result: Any = None
    #: :class:`FailedOutcome` document once the job is ``failed``
    error: dict[str, Any] | None = None
    #: side-channel facts that must not perturb the result document
    #: (e.g. ``profile_cache_hit``)
    info: dict[str, Any] = field(default_factory=dict)

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """The versioned job-record envelope for this job.

        ``include_result=False`` gives the listing summary: everything but
        the (potentially multi-megabyte) result document.
        """
        doc: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "payload": _public_payload(self.kind, self.payload),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "info": dict(self.info),
        }
        if include_result:
            doc["result"] = self.result
        return job_record(doc)


class JobStore:
    """Thread-safe job registry + FIFO queue with bounded history."""

    def __init__(
        self,
        max_history: int = 256,
        jsonl_path: str | None = None,
    ) -> None:
        self.max_history = max(1, max_history)
        self.jsonl_path = jsonl_path
        self._cond = threading.Condition()
        self._jobs: dict[int, Job] = {}
        self._queue: deque[int] = deque()
        self._terminal: deque[int] = deque()
        self._ids = itertools.count(1)
        self._closed = False
        self.submitted = 0
        self.evicted = 0
        #: JSONL appends that failed (disk full, unwritable path); the
        #: in-memory store keeps working — persistence is best-effort.
        self.persist_errors = 0

    # -- submission / claiming ------------------------------------------

    def submit(self, kind: str, payload: dict[str, Any]) -> Job:
        """Enqueue a new job; returns it in the ``queued`` state."""
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}")
        with self._cond:
            if self._closed:
                raise RuntimeError("job store is closed")
            job = Job(id=next(self._ids), kind=kind, payload=dict(payload))
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self.submitted += 1
            self._persist(job)
            self._cond.notify()
        return job

    def claim(self, timeout: float | None = None) -> Job | None:
        """Pop the next queued job and mark it ``running`` atomically.

        Blocks up to *timeout* seconds (forever when None) for work; returns
        None on timeout or once the store is closed.  Jobs cancelled while
        queued are skipped here — cancellation and claiming share the lock.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._queue:
                    job = self._jobs.get(self._queue.popleft())
                    if job is None or job.state != "queued":
                        continue
                    job.state = "running"
                    job.started_at = time.time()
                    self._persist(job)
                    return job
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def close(self) -> None:
        """Stop accepting submissions and wake every waiting claimer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- transitions ----------------------------------------------------

    def finish(self, job_id: int, result: Any, info: dict[str, Any] | None = None) -> Job:
        """Transition a running job to ``done`` with its result document."""
        return self._complete(job_id, "done", result=result, info=info)

    def fail(self, job_id: int, error: dict[str, Any], info: dict[str, Any] | None = None) -> Job:
        """Transition a running job to ``failed`` with its failure record."""
        return self._complete(job_id, "failed", error=error, info=info)

    def cancel(self, job_id: int) -> Job:
        """Cancel a *queued* job.

        Raises :class:`KeyError` for an unknown id and :class:`ValueError`
        once the job is running or terminal — in-flight analyses are not
        interrupted (MiniC interpretation holds no cancellation points).
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id}")
            if job.state != "queued":
                raise ValueError(f"job {job_id} is {job.state}, not queued")
            job.state = "cancelled"
            job.finished_at = time.time()
            self._retire(job)
            return job

    def _complete(
        self,
        job_id: int,
        state: str,
        result: Any = None,
        error: dict[str, Any] | None = None,
        info: dict[str, Any] | None = None,
    ) -> Job:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id}")
            if job.state != "running":
                raise ValueError(f"job {job_id} is {job.state}, not running")
            job.state = state
            job.result = result
            job.error = error
            if info:
                job.info.update(info)
            job.finished_at = time.time()
            self._retire(job)
            return job

    def _retire(self, job: Job) -> None:
        """Record a terminal transition: persist, then bound the history."""
        self._persist(job)
        self._terminal.append(job.id)
        while len(self._terminal) > self.max_history:
            evicted = self._terminal.popleft()
            if self._jobs.pop(evicted, None) is not None:
                self.evicted += 1

    # -- queries --------------------------------------------------------

    def get(self, job_id: int) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def list_jobs(self, state: str | None = None, kind: str | None = None) -> list[Job]:
        """Retained jobs in submission order, optionally filtered."""
        with self._cond:
            return [
                job
                for job_id in sorted(self._jobs)
                if (job := self._jobs[job_id])
                and (state is None or job.state == state)
                and (kind is None or job.kind == kind)
            ]

    def counts(self) -> dict[str, Any]:
        """Queue-depth and per-state tallies for ``/v1/stats``."""
        with self._cond:
            states = {s: 0 for s in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "states": states,
                "queue_depth": states["queued"],
                "submitted": self.submitted,
                "retained": len(self._jobs),
                "evicted": self.evicted,
                "persist_errors": self.persist_errors,
            }

    # -- persistence ----------------------------------------------------

    def _persist(self, job: Job) -> None:
        """Append *job*'s current record to the JSONL log, best-effort."""
        if self.jsonl_path is None:
            return
        try:
            with open(self.jsonl_path, "a") as fh:
                fh.write(json.dumps(job.to_dict(), sort_keys=True) + "\n")
        except OSError:
            self.persist_errors += 1
