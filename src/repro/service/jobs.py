"""Job store for the analysis service: lifecycle, history, persistence.

A :class:`JobStore` is the single source of truth the daemon's HTTP front
end and worker pool share.  Every submission becomes a :class:`Job` with a
monotonically increasing id and walks the lifecycle::

    queued -> running -> done | failed
    queued -> cancelled

State transitions happen under one lock, so a cancel can never race a
worker's claim: a queued job cancels immediately, and
:meth:`JobStore.claim` skips entries cancelled while waiting in the queue.
A *running* job is cancelled cooperatively — MiniC interpretation holds no
cancellation points, so ``DELETE /v1/jobs/<id>`` marks the job
``cancel_requested`` and the worker's completion is recorded as
``cancelled`` (its result document discarded) instead of ``done`` or
``failed``.  Only already-terminal jobs refuse cancellation.

Job records serialize through the versioned envelope of
:func:`repro.patterns.schema.job_record`; a failed job's ``error`` field is
the :class:`~repro.runtime.parallel.FailedOutcome` document with its
``"failed": true`` marker, so service consumers reuse the sweep's failure
decoding unchanged.  History is bounded — terminal jobs beyond
``max_history`` are evicted oldest-first (queued and running jobs are never
evicted).

Telemetry: every transition emits a structured ``job.transition`` record
through a :class:`repro.obs.logs.JsonLogger` (the ``jsonl_path``
constructor argument keeps its crash-durable audit-trail role, now as the
logger's sink), each record carrying the job's ``correlation_id``; and the
store maintains the daemon's job metrics —
``repro_jobs_{submitted,completed,failed,cancelled}_total`` counters plus
the ``repro_job_queue_wait_seconds`` and ``repro_job_run_seconds{kind=}``
histograms — in the process-wide registry scraped at ``/v1/metrics``.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.obs.logs import JsonLogger, new_correlation_id
from repro.obs.metrics import get_registry
from repro.patterns.schema import JOB_STATES, job_record

#: Job kinds the executor knows how to run.
JOB_KINDS = ("source", "bench", "sweep")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def build_call_args(specs: Iterable[Sequence[str]], seed: int = 0) -> list:
    """Materialize one entry-function argument list from a portable spec.

    *specs* is an ordered sequence of ``(kind, value)`` pairs — the same
    left-to-right convention as the CLI's ``--scalar/--zeros/--rand``
    options, which delegate here — where ``kind`` is ``"scalar"``,
    ``"zeros"``, or ``"rand"`` and ``value`` is the option text (``"5"``,
    ``"A:40,40"``).  Random arrays come from a generator seeded with *seed*,
    so a spec is a complete, JSON-friendly description of the inputs: the
    service and the CLI build bit-identical argument sets from it.
    """
    rng = np.random.default_rng(seed)
    call_args: list = []
    for kind, value in specs:
        if kind == "scalar":
            call_args.append(float(value) if "." in value else int(value))
        elif kind in ("zeros", "rand"):
            name, _, shape_txt = value.partition(":")
            if not shape_txt:
                shape_txt = name
            shape = tuple(int(s) for s in shape_txt.split(",") if s)
            call_args.append(np.zeros(shape) if kind == "zeros" else rng.random(shape))
        else:
            raise ValueError(f"unknown argument kind {kind!r}")
    return call_args


def _public_payload(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    """The payload as exposed in job records: source text becomes a digest.

    Raw MiniC source can be large and records are listed, persisted, and
    polled repeatedly, so ``source`` jobs carry a sha256 + line count in
    place of the text (the analysis result embeds the source anyway).
    """
    public = {k: v for k, v in payload.items() if k != "source"}
    if kind == "source":
        source = payload.get("source", "")
        public["source_sha256"] = hashlib.sha256(source.encode("utf-8")).hexdigest()
        public["source_lines"] = source.count("\n") + bool(source)
    return public


@dataclass
class Job:
    """One submission and everything the service knows about it."""

    id: int
    kind: str
    payload: dict[str, Any]
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: analysis / outcome document(s) once the job is ``done``
    result: Any = None
    #: :class:`FailedOutcome` document once the job is ``failed``
    error: dict[str, Any] | None = None
    #: side-channel facts that must not perturb the result document
    #: (e.g. ``profile_cache_hit``)
    info: dict[str, Any] = field(default_factory=dict)
    #: opaque id correlating this job's log records across every layer
    #: (client submission -> store transitions -> worker -> run_one);
    #: client-generated when provided, otherwise minted at submit time
    correlation_id: str = ""
    #: set when a cancel arrived while the job was already running; the
    #: worker's completion is then recorded as ``cancelled``
    cancel_requested: bool = False

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """The versioned job-record envelope for this job.

        ``include_result=False`` gives the listing summary: everything but
        the (potentially multi-megabyte) result document.
        """
        doc: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "payload": _public_payload(self.kind, self.payload),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "info": dict(self.info),
            "correlation_id": self.correlation_id,
            "cancel_requested": self.cancel_requested,
        }
        if include_result:
            doc["result"] = self.result
        return job_record(doc)


class JobStore:
    """Thread-safe job registry + FIFO queue with bounded history."""

    def __init__(
        self,
        max_history: int = 256,
        jsonl_path: str | None = None,
        logger: JsonLogger | None = None,
    ) -> None:
        self.max_history = max(1, max_history)
        self.jsonl_path = jsonl_path
        if logger is None:
            logger = JsonLogger(path=jsonl_path) if jsonl_path else JsonLogger()
        self._log = logger
        self._cond = threading.Condition()
        self._jobs: dict[int, Job] = {}
        self._queue: deque[int] = deque()
        self._terminal: deque[int] = deque()
        self._ids = itertools.count(1)
        self._closed = False
        self.submitted = 0
        self.evicted = 0
        metrics = get_registry()
        self._submitted_total = metrics.counter(
            "repro_jobs_submitted_total", "Jobs accepted into the queue"
        )
        self._completed_total = metrics.counter(
            "repro_jobs_completed_total", "Jobs finished in the done state"
        )
        self._failed_total = metrics.counter(
            "repro_jobs_failed_total", "Jobs finished in the failed state"
        )
        self._cancelled_total = metrics.counter(
            "repro_jobs_cancelled_total",
            "Jobs cancelled (while queued or cooperatively while running)",
        )
        self._queue_wait_seconds = metrics.histogram(
            "repro_job_queue_wait_seconds",
            "Seconds a job waited in the queue before a worker claimed it",
        )
        self._run_seconds = metrics.histogram(
            "repro_job_run_seconds",
            "Seconds a worker spent running a claimed job",
            labelnames=("kind",),
        )

    @property
    def persist_errors(self) -> int:
        """Transition-log appends that failed (disk full, unwritable path);
        the in-memory store keeps working — persistence is best-effort."""
        return self._log.errors

    @property
    def logger(self) -> JsonLogger:
        """The store's structured transition logger (shared sink)."""
        return self._log

    # -- submission / claiming ------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        correlation_id: str | None = None,
    ) -> Job:
        """Enqueue a new job; returns it in the ``queued`` state.

        *correlation_id* is normally minted by the submitting client so the
        caller can grep its own logs for the same id; one is generated here
        when absent so every job is correlatable.
        """
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}")
        with self._cond:
            if self._closed:
                raise RuntimeError("job store is closed")
            job = Job(
                id=next(self._ids),
                kind=kind,
                payload=dict(payload),
                correlation_id=correlation_id or new_correlation_id(),
            )
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self.submitted += 1
            self._submitted_total.inc()
            self._persist(job)
            self._cond.notify()
        return job

    def claim(self, timeout: float | None = None) -> Job | None:
        """Pop the next queued job and mark it ``running`` atomically.

        Blocks up to *timeout* seconds (forever when None) for work; returns
        None on timeout or once the store is closed.  Jobs cancelled while
        queued are skipped here — cancellation and claiming share the lock.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._queue:
                    job = self._jobs.get(self._queue.popleft())
                    if job is None or job.state != "queued":
                        continue
                    job.state = "running"
                    job.started_at = time.time()
                    self._queue_wait_seconds.observe(
                        max(0.0, job.started_at - job.submitted_at)
                    )
                    self._persist(job)
                    return job
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def close(self) -> None:
        """Stop accepting submissions and wake every waiting claimer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- transitions ----------------------------------------------------

    def finish(self, job_id: int, result: Any, info: dict[str, Any] | None = None) -> Job:
        """Transition a running job to ``done`` with its result document."""
        return self._complete(job_id, "done", result=result, info=info)

    def fail(self, job_id: int, error: dict[str, Any], info: dict[str, Any] | None = None) -> Job:
        """Transition a running job to ``failed`` with its failure record."""
        return self._complete(job_id, "failed", error=error, info=info)

    def cancel(self, job_id: int) -> Job:
        """Cancel a job that has not finished yet.

        A *queued* job becomes ``cancelled`` immediately.  A *running* job
        is cancelled cooperatively: MiniC interpretation holds no
        cancellation points, so the job is marked ``cancel_requested`` (its
        state stays ``running``) and the worker's eventual completion is
        recorded as ``cancelled`` with the result discarded.  Raises
        :class:`KeyError` for an unknown id and :class:`ValueError` for a
        job already in a terminal state.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id}")
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.time()
                self._cancelled_total.inc()
                self._retire(job)
                return job
            if job.state == "running":
                if not job.cancel_requested:
                    job.cancel_requested = True
                    self._persist(job, event="job.cancel_requested")
                return job
            raise ValueError(f"job {job_id} is {job.state}, already terminal")

    def _complete(
        self,
        job_id: int,
        state: str,
        result: Any = None,
        error: dict[str, Any] | None = None,
        info: dict[str, Any] | None = None,
    ) -> Job:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id}")
            if job.state != "running":
                raise ValueError(f"job {job_id} is {job.state}, not running")
            job.finished_at = time.time()
            if job.started_at is not None:
                self._run_seconds.labels(kind=job.kind).observe(
                    max(0.0, job.finished_at - job.started_at)
                )
            if job.cancel_requested:
                # the run completed, but a cancel arrived mid-flight: the
                # outcome the caller no longer wants is discarded, only what
                # it *was* is kept for the record
                job.state = "cancelled"
                job.result = None
                job.error = None
                job.info["completed_as"] = state
                self._cancelled_total.inc()
            else:
                job.state = state
                job.result = result
                job.error = error
                (self._completed_total if state == "done" else self._failed_total).inc()
            if info:
                job.info.update(info)
            self._retire(job)
            return job

    def _retire(self, job: Job) -> None:
        """Record a terminal transition: persist, then bound the history."""
        self._persist(job)
        self._terminal.append(job.id)
        while len(self._terminal) > self.max_history:
            evicted = self._terminal.popleft()
            if self._jobs.pop(evicted, None) is not None:
                self.evicted += 1

    # -- queries --------------------------------------------------------

    def get(self, job_id: int) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def list_jobs(self, state: str | None = None, kind: str | None = None) -> list[Job]:
        """Retained jobs in submission order, optionally filtered."""
        with self._cond:
            return [
                job
                for job_id in sorted(self._jobs)
                if (job := self._jobs[job_id])
                and (state is None or job.state == state)
                and (kind is None or job.kind == kind)
            ]

    def counts(self) -> dict[str, Any]:
        """Queue-depth and per-state tallies for ``/v1/stats``."""
        with self._cond:
            states = {s: 0 for s in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "states": states,
                "queue_depth": states["queued"],
                "submitted": self.submitted,
                "retained": len(self._jobs),
                "evicted": self.evicted,
                "persist_errors": self.persist_errors,
            }

    # -- persistence ----------------------------------------------------

    def _persist(self, job: Job, event: str = "job.transition") -> None:
        """Emit *job*'s current record as a structured log line, best-effort.

        Each line is one JSON object: timestamp, level, *event*, the job's
        correlation id, and the full versioned job-record envelope under
        ``record`` (result document excluded — results can be megabytes and
        are fetchable from the store).  A null-sink logger makes this free.
        """
        if not self._log.active:
            return
        self._log.info(
            event,
            job_id=job.id,
            correlation_id=job.correlation_id,
            state=job.state,
            kind=job.kind,
            record=job.to_dict(include_result=False),
        )
