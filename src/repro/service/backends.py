"""Execution backends: where a claimed service job actually runs.

This module is the seam between the service's queueing layer
(:mod:`repro.service.jobs` + :mod:`repro.service.executor`) and the
fault-tolerant analysis core (:func:`repro.runtime.parallel.run_one`).
The executor's claimer threads hand each claimed job to one
:class:`ExecutionBackend`; everything below that call — job-kind routing,
per-job tracer, timeout/retry/failure-record policy — is shared by every
backend through :func:`execute_job`, so the two backends can only differ
in *where* the work runs, never in *what* it produces:

``thread`` (:class:`ThreadBackend`)
    Runs the job in the claiming worker thread — the service's original
    behavior.  Cheap (no serialization, shares the daemon's warm
    interpreter state) but GIL-bound, and SIGALRM timeouts cannot fire
    off the main thread, so ``source``/``bench`` jobs run unbounded.

``process`` (:class:`ProcessBackend`)
    Ships the job to a :class:`~concurrent.futures.ProcessPoolExecutor`
    worker via the top-level :func:`process_job_entry`.  Analysis runs on
    the worker process's **main** thread, so
    :func:`~repro.runtime.parallel.call_with_timeout` arms a real SIGALRM
    timer again — per-job ``timeout`` is enforced for every job kind —
    and N workers profile N jobs with N GILs.  Workers share the daemon's
    on-disk profile cache (content-addressed, atomic writes) and ship
    their :class:`~repro.profiling.cache.CacheStats` back with each
    result so cache telemetry stays visible in the daemon's metrics.  A
    broken pool degrades the affected job to in-thread execution (the
    ``thread`` behavior) and rebuilds the pool for the next job, the same
    keep-serving posture :func:`~repro.runtime.parallel.analyze_registry`
    takes when its sweep pool dies.

Both backends produce either ``(result_document, info)`` or a
:class:`~repro.runtime.parallel.FailedOutcome` — never an exception — and
result documents are byte-identical across backends (enforced by
``tests/test_service_backends.py``): process boundaries move work, not
meaning.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.obs.logs import JsonLogger
from repro.obs.tracing import Tracer, activate
from repro.profiling.cache import CacheStats, ProfileCache
from repro.profiling.hotspots import DEFAULT_THRESHOLD
from repro.runtime.parallel import FailedOutcome, run_one
from repro.service.jobs import Job, build_call_args

#: Backend names ``repro serve --backend`` accepts.
BACKENDS = ("thread", "process")


# -- job runners (pure functions of payload + cache) ---------------------

def run_source_job(payload: dict[str, Any], cache: ProfileCache) -> tuple[dict, dict]:
    """Compile, profile (through *cache*), and analyze one MiniC source.

    Returns the versioned analysis document — byte-identical, modulo trace
    wall-clock timings, to ``repro detect --json --compact`` on the same
    program — plus ``{"profile_cache_hit": bool}``.
    """
    from repro.api import compile_source
    from repro.patterns.engine import analyze_profile
    from repro.patterns.schema import analysis_to_dict
    from repro.profiling.cache import cached_profile_runs

    program = compile_source(payload["source"])
    arg_sets = [
        build_call_args(payload.get("args", []), int(payload.get("seed", 0)))
    ]
    profile, hit = cached_profile_runs(
        program, payload["entry"], arg_sets, cache=cache
    )
    result = analyze_profile(
        program,
        profile,
        hotspot_threshold=float(payload.get("threshold", DEFAULT_THRESHOLD)),
    )
    return analysis_to_dict(result), {"profile_cache_hit": hit}


def run_bench_job(payload: dict[str, Any], cache: ProfileCache) -> tuple[dict, dict]:
    """One registered benchmark end to end (analysis + simulation).

    Mirrors ``parallel.analyze_one``, but profiles through the passed
    cache object so hits show up in the daemon's ``/v1/stats``.

    Campaign cells ride through optional payload keys, each defaulting to
    the registry spec / the frozen :data:`~repro.sim.machine.DEFAULT_MACHINE`
    so a bare ``{"kind": "bench", "name": ...}`` stays byte-identical to
    ``repro table3``:

    * ``scale`` — input-scale factor applied to the spec's argument sets
      via :func:`repro.bench_programs.workloads.scale_arg_sets`;
    * ``threshold`` / ``min_pairs`` — detector-config overrides;
    * ``machine`` — mapping of :class:`~repro.sim.machine.Machine` cost
      fields (``spawn_cost``, ``barrier_base``, ...) replaced onto the
      default model before simulation.
    """
    from dataclasses import replace

    from repro.bench_programs.registry import get_benchmark
    from repro.bench_programs.workloads import scale_arg_sets
    from repro.lang.parser import parse_program
    from repro.lang.validate import validate_program
    from repro.patterns.engine import analyze
    from repro.runtime.parallel import outcome_from_analysis
    from repro.sim import plan_and_simulate
    from repro.sim.machine import DEFAULT_MACHINE

    before = cache.stats.hits
    spec = get_benchmark(payload["name"])
    program = parse_program(spec.source)
    validate_program(program)
    arg_sets = spec.arg_sets()
    scale = float(payload.get("scale", 1.0))
    if scale != 1.0:
        arg_sets = scale_arg_sets(arg_sets, scale)
    machine = DEFAULT_MACHINE
    overrides = payload.get("machine") or {}
    if overrides:
        machine = replace(DEFAULT_MACHINE, **overrides)
    result = analyze(
        program,
        spec.entry,
        arg_sets,
        hotspot_threshold=float(payload.get("threshold", spec.hotspot_threshold)),
        min_pairs=int(payload.get("min_pairs", spec.min_pairs)),
        cache=cache,
    )
    outcome = outcome_from_analysis(
        spec, result, plan_and_simulate(result, machine=machine)
    )
    return outcome.to_dict(), {"profile_cache_hit": cache.stats.hits > before}


def run_sweep_job(
    payload: dict[str, Any],
    cache: ProfileCache,
    timeout: float | None = None,
    retries: int = 0,
) -> tuple[list, dict]:
    """A registry sweep in keep-going mode; failures fill their slots."""
    from repro.runtime.parallel import analyze_registry

    outcomes = analyze_registry(
        names=payload.get("names"),
        cache_dir=str(cache.root),
        parallel=bool(payload.get("parallel", False)),
        timeout=timeout,
        retries=retries,
        fail_fast=False,
    )
    failed = sum(1 for o in outcomes if isinstance(o, FailedOutcome))
    return (
        [o.to_dict() for o in outcomes],
        {"programs": len(outcomes), "failed": failed},
    )


_RUNNERS = {
    "source": run_source_job,
    "bench": run_bench_job,
    "sweep": run_sweep_job,
}


def execute_job(
    kind: str,
    payload: dict[str, Any],
    cache: ProfileCache,
    *,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
    name: str = "job",
    log: JsonLogger | None = None,
    queue_wait_s: float = 0.0,
) -> "FailedOutcome | tuple[Any, dict]":
    """Run one job body under the sweep's fault policy; never raises.

    This is the single execution path both backends funnel into — in the
    claimer thread for ``thread``, on a pool worker's main thread for
    ``process``.  A per-job :class:`Tracer` is activated so every span
    the analysis opens (parse, cache reads, detector stages) joins this
    job's tree, with the queue wait recorded into the same tree; the job
    body runs inside :func:`~repro.runtime.parallel.run_one`, so after
    ``1 + retries`` attempts an exhausted exception comes back as a
    structured :class:`FailedOutcome` instead of propagating.

    The payload's own ``timeout``/``retries`` keys override the
    service-level defaults.  A ``sweep``'s knobs are per-program and
    consumed inside ``analyze_registry``; its job-level wrapper only
    catches the sweep machinery itself crashing.
    """
    job_timeout = payload.get("timeout", timeout)
    job_retries = int(payload.get("retries", retries))
    runner = _RUNNERS[kind]
    if kind == "sweep":
        sweep_timeout, sweep_retries = job_timeout, job_retries
        job_timeout, job_retries = None, 0

        def body() -> tuple[Any, dict]:
            return runner(payload, cache, timeout=sweep_timeout, retries=sweep_retries)
    else:
        def body() -> tuple[Any, dict]:
            return runner(payload, cache)

    tracer = Tracer()
    tracer.record("job.queue_wait", queue_wait_s)
    with activate(tracer):
        with tracer.span("job.run", kind=kind):
            return run_one(
                name,
                timeout=job_timeout,
                retries=job_retries,
                backoff=backoff,
                analyze_fn=lambda _name, _cache_dir: body(),
                log=log,
            )


def process_job_entry(
    kind: str,
    payload: dict[str, Any],
    cache_root: str,
    timeout: float | None,
    retries: int,
    backoff: float,
    name: str,
    queue_wait_s: float,
) -> "tuple[FailedOutcome | tuple[Any, dict], CacheStats]":
    """Pool-worker entry point: run one job, report the worker's cache stats.

    Top-level (picklable) by design.  The worker opens its own handle on
    the daemon's **on-disk** cache root — the content-addressed store is
    multi-process safe (atomic writes, re-read on miss) — and ships its
    in-memory :class:`CacheStats` back alongside the outcome, because the
    metric increments the worker mirrored into its *own* process registry
    die with the worker; the dispatcher merges them into the daemon's
    stats with ``mirror_metrics=True``.

    Running here, on the worker process's main thread, is what re-arms
    SIGALRM: per-job timeouts fire for ``source``/``bench`` jobs again.
    """
    cache = ProfileCache(root=cache_root)
    outcome = execute_job(
        kind,
        payload,
        cache,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        name=name,
        queue_wait_s=queue_wait_s,
    )
    return outcome, cache.stats


# -- backends ------------------------------------------------------------

class ExecutionBackend:
    """Where claimed jobs run.  Subclasses override :meth:`run`.

    ``run`` must never raise — it returns either ``(result, info)`` or a
    :class:`FailedOutcome`, mirroring :func:`execute_job`'s contract —
    because the claimer thread that calls it must survive any job.
    """

    name = "abstract"

    def __init__(
        self,
        cache: ProfileCache,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
    ) -> None:
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    def run(
        self, job: Job, queue_wait_s: float = 0.0, log: JsonLogger | None = None
    ) -> "FailedOutcome | tuple[Any, dict]":
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (pools); idempotent."""


class ThreadBackend(ExecutionBackend):
    """Run jobs in the claiming worker thread (the original behavior)."""

    name = "thread"

    def run(
        self, job: Job, queue_wait_s: float = 0.0, log: JsonLogger | None = None
    ) -> "FailedOutcome | tuple[Any, dict]":
        return execute_job(
            job.kind,
            job.payload,
            self.cache,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            name=f"job-{job.id}",
            log=log,
            queue_wait_s=queue_wait_s,
        )


class ProcessBackend(ExecutionBackend):
    """Run jobs in a process pool: N GILs, real per-job SIGALRM timeouts."""

    name = "process"

    def __init__(
        self,
        cache: ProfileCache,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        workers: int = 2,
    ) -> None:
        super().__init__(cache, timeout=timeout, retries=retries, backoff=backoff)
        self.workers = max(1, workers)
        #: jobs that fell back to in-thread execution after a pool break
        self.degraded = 0
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.workers
        )

    def _submit(self, job: Job, queue_wait_s: float):
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool.submit(
                process_job_entry,
                job.kind,
                job.payload,
                str(self.cache.root),
                self.timeout,
                self.retries,
                self.backoff,
                f"job-{job.id}",
                queue_wait_s,
            )

    def _discard_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def run(
        self, job: Job, queue_wait_s: float = 0.0, log: JsonLogger | None = None
    ) -> "FailedOutcome | tuple[Any, dict]":
        try:
            outcome, worker_stats = self._submit(job, queue_wait_s).result()
        except BrokenProcessPool:
            # The pool died under this job (worker killed, fork failure).
            # Keep serving: discard the pool (a fresh one is built lazily
            # for the next job) and degrade this job to in-thread
            # execution — the thread backend's semantics, minus SIGALRM.
            self._discard_pool()
            self.degraded += 1
            if log is not None:
                log.warning("backend.pool_broken", job_id=job.id, degraded=self.degraded)
            outcome = execute_job(
                job.kind,
                job.payload,
                self.cache,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
                name=f"job-{job.id}",
                log=log,
                queue_wait_s=queue_wait_s,
            )
            if not isinstance(outcome, FailedOutcome):
                result, info = outcome
                outcome = (result, {**info, "backend_degraded": True})
            return outcome
        # The worker's own registry increments died with its process; this
        # merge is their only path into the daemon's scrape.
        self.cache.stats.merge(worker_stats, mirror_metrics=True)
        return outcome

    def shutdown(self) -> None:
        self._discard_pool()


def make_backend(
    name: str,
    cache: ProfileCache,
    *,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
    workers: int = 2,
) -> ExecutionBackend:
    """Instantiate the backend *name* (one of :data:`BACKENDS`)."""
    if name == "thread":
        return ThreadBackend(cache, timeout=timeout, retries=retries, backoff=backoff)
    if name == "process":
        return ProcessBackend(
            cache, timeout=timeout, retries=retries, backoff=backoff, workers=workers
        )
    raise ValueError(f"unknown backend {name!r}; expected one of {list(BACKENDS)}")
