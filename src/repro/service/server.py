"""HTTP front end for the analysis daemon.

Built on :class:`http.server.ThreadingHTTPServer` (stdlib only); request
threads just enqueue into / read from the shared
:class:`~repro.service.jobs.JobStore`, so submissions return immediately
with ``202 Accepted`` while the bounded worker pool drains the queue.

Endpoints (all JSON):

====================  ======================================================
``POST /v1/jobs``     submit a job: ``{"kind": "source", "source": ...,
                      "entry": ..., "args": [["rand", "A:24,24"], ...]}``,
                      ``{"kind": "bench", "name": "reg_detect"}``, or
                      ``{"kind": "sweep", "names": [...]}``
``GET /v1/jobs``      list retained jobs (``?state=``, ``?kind=`` filters);
                      summaries only — results are fetched per job
``GET /v1/jobs/<id>``     full job record: status, timestamps, result/error
``DELETE /v1/jobs/<id>``  cancel a job: queued jobs cancel immediately,
                          running jobs cooperatively (``cancel_requested``
                          until the worker finishes); 409 once terminal
``GET /v1/health``    liveness + uptime
``GET /v1/stats``     queue depth, per-state tallies, worker utilization,
                      and the shared profile cache's counters
``GET /v1/version``   ``repro.__version__`` + analysis schema version
``GET /v1/metrics``   Prometheus text exposition of the process registry
                      (**not** JSON — scrape it, or ``repro metrics``)
====================  ======================================================

Error responses are ``{"error": <message>}`` with the usual status codes
(400 malformed submission, 404 unknown job/route, 409 not cancellable).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.obs.metrics import get_registry
from repro.patterns.schema import SCHEMA_VERSION
from repro.profiling.cache import ProfileCache
from repro.service.executor import AnalysisExecutor
from repro.service.jobs import JOB_KINDS, JobStore


class AnalysisService:
    """The daemon: one job store, one worker pool, one HTTP server.

    ``port=0`` binds an ephemeral port (read it back from ``self.port``) —
    the idiom tests and embedded use rely on.  Run blocking with
    :meth:`serve_forever` (the CLI's ``repro serve``) or off-thread with
    :meth:`start_background`; either way :meth:`shutdown` stops the HTTP
    loop and the workers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 2,
        cache: ProfileCache | None = None,
        cache_dir: str | None = None,
        max_history: int = 256,
        jsonl_path: str | None = None,
        timeout: float | None = None,
        retries: int = 0,
    ) -> None:
        self.store = JobStore(max_history=max_history, jsonl_path=jsonl_path)
        self.executor = AnalysisExecutor(
            self.store,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            timeout=timeout,
            retries=retries,
        )
        self.started_at = time.time()
        handler = type("AnalysisRequestHandler", (_Handler,), {"service": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Start the workers and block serving HTTP until :meth:`shutdown`."""
        self.executor.start()
        self.httpd.serve_forever(poll_interval=0.2)

    def start_background(self) -> None:
        """Start workers + HTTP loop on a daemon thread and return."""
        self.executor.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop the HTTP loop, close the queue, and release the socket."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self.executor.shutdown(wait=False)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- request-level operations (called from handler threads) ---------

    def submit(self, body: dict[str, Any]) -> dict[str, Any]:
        """Validate a submission body and enqueue it; raises ValueError."""
        kind = body.get("kind")
        if kind not in JOB_KINDS:
            raise ValueError(f"kind must be one of {list(JOB_KINDS)}, got {kind!r}")
        if kind == "source":
            if not body.get("source") or not body.get("entry"):
                raise ValueError("source jobs require 'source' and 'entry'")
            args = body.get("args", [])
            if not all(
                isinstance(a, (list, tuple)) and len(a) == 2 for a in args
            ):
                raise ValueError("'args' must be a list of [kind, value] pairs")
        elif kind == "bench":
            from repro.bench_programs.registry import all_benchmarks

            names = {spec.name for spec in all_benchmarks()}
            if body.get("name") not in names:
                raise ValueError(f"unknown benchmark {body.get('name')!r}")
        correlation_id = body.get("correlation_id")
        if correlation_id is not None and not isinstance(correlation_id, str):
            raise ValueError("'correlation_id' must be a string")
        payload = {
            k: v for k, v in body.items() if k not in ("kind", "correlation_id")
        }
        job = self.store.submit(kind, payload, correlation_id=correlation_id)
        return job.to_dict(include_result=False)

    def stats(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": self.store.counts(),
            "workers": {
                "count": self.executor.workers,
                "busy": self.executor.busy,
                "peak_busy": self.executor.peak_busy,
                "utilization": round(self.executor.utilization(), 4),
            },
            "cache": self.executor.cache.stats.as_dict(),
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` onto the owning :class:`AnalysisService`."""

    service: AnalysisService  # bound by the per-service subclass
    protocol_version = "HTTP/1.1"

    # The daemon prints one startup line; per-request logging stays off so
    # stdout/stderr remain usable in pipelines and tests.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send(self, status: int, doc: Any) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _job_id(self, path: str) -> int | None:
        tail = path[len("/v1/jobs/"):]
        return int(tail) if tail.isdigit() else None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        path = url.path.rstrip("/") or "/"
        if path == "/v1/health":
            self._send(200, {
                "status": "ok",
                "uptime_s": round(time.time() - self.service.started_at, 3),
            })
        elif path == "/v1/version":
            self._send(200, {
                "version": __version__,
                "schema_version": SCHEMA_VERSION,
            })
        elif path == "/v1/stats":
            self._send(200, self.service.stats())
        elif path == "/v1/metrics":
            self._send_text(200, get_registry().render())
        elif path == "/v1/jobs":
            query = parse_qs(url.query)
            jobs = self.service.store.list_jobs(
                state=query.get("state", [None])[0],
                kind=query.get("kind", [None])[0],
            )
            self._send(200, {
                "jobs": [job.to_dict(include_result=False) for job in jobs],
            })
        elif path.startswith("/v1/jobs/"):
            job_id = self._job_id(path)
            job = None if job_id is None else self.service.store.get(job_id)
            if job is None:
                self._error(404, f"no job {path[len('/v1/jobs/'):]!r}")
            else:
                self._send(200, job.to_dict())
        else:
            self._error(404, f"no route {path!r}")

    def do_POST(self) -> None:  # noqa: N802
        if urlparse(self.path).path.rstrip("/") != "/v1/jobs":
            self._error(404, f"no route {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("submission body must be a JSON object")
            record = self.service.submit(body)
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, str(exc))
            return
        self._send(202, record)

    def do_DELETE(self) -> None:  # noqa: N802
        path = urlparse(self.path).path.rstrip("/")
        if not path.startswith("/v1/jobs/"):
            self._error(404, f"no route {path!r}")
            return
        job_id = self._job_id(path)
        if job_id is None:
            self._error(404, f"no job {path[len('/v1/jobs/'):]!r}")
            return
        try:
            job = self.service.store.cancel(job_id)
        except KeyError:
            self._error(404, f"no job {job_id}")
        except ValueError as exc:
            self._error(409, str(exc))
        else:
            self._send(200, job.to_dict(include_result=False))
