"""HTTP front end for the analysis daemon.

Built on :class:`http.server.ThreadingHTTPServer` (stdlib only); request
threads just enqueue into / read from the shared
:class:`~repro.service.jobs.JobStore`, so submissions return immediately
with ``202 Accepted`` while the bounded worker pool drains the queue
through the configured execution backend (``thread`` or ``process`` —
see :mod:`repro.service.backends`).

Endpoints (all JSON):

====================  ======================================================
``POST /v1/jobs``     submit a job: ``{"kind": "source", "source": ...,
                      "entry": ..., "args": [["rand", "A:24,24"], ...]}``,
                      ``{"kind": "bench", "name": "reg_detect"}``, or
                      ``{"kind": "sweep", "names": [...]}``; identical
                      in-flight work coalesces (the 202 record carries
                      ``coalesced_with``); a full queue answers ``429``
                      with a ``Retry-After`` header.  A JSON **array** of
                      such objects submits a batch: all items validate
                      before any enqueue (400 lists per-index errors and
                      nothing is admitted), success answers 202
                      ``{"jobs": [...]}``, and queue-full mid-batch
                      answers 429 with the ``accepted`` prefix so clients
                      resubmit only the tail
``GET /v1/jobs``      list retained jobs, **newest first** (``?state=``,
                      ``?kind=`` filters; ``?limit=N`` truncates to the
                      newest N, ``?limit=0`` is explicitly zero rows);
                      summaries only — results are fetched per job
``GET /v1/jobs/<id>``     full job record: status, timestamps, result/error
``DELETE /v1/jobs/<id>``  cancel a job: queued jobs cancel immediately,
                          running jobs cooperatively (``cancel_requested``
                          until the worker finishes); 409 once terminal
``GET /v1/health``    liveness + uptime
``GET /v1/stats``     queue depth, per-state tallies, worker utilization,
                      backend + admission-control state, per-client
                      request accounting, and the shared profile cache's
                      counters
``GET /v1/version``   ``repro.__version__`` + analysis schema version
``GET /v1/metrics``   Prometheus text exposition of the process registry
                      (**not** JSON — scrape it, or ``repro metrics``)
====================  ======================================================

Clients self-identify with an ``X-Repro-Client`` header (the bundled
:class:`~repro.service.client.ServiceClient` always sends one; anonymous
callers are keyed by remote address) — ``/v1/stats`` reports per-client
accepted/coalesced/rejected tallies and ``/v1/metrics`` exposes them as
``repro_client_requests_total{client=...,outcome=...}``.

Error responses are ``{"error": <message>}`` with the usual status codes
(400 malformed submission, 404 unknown job/route, 409 not cancellable,
429 queue full, 500 unexpected handler failure — never an HTML traceback).
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.obs.metrics import get_registry
from repro.patterns.schema import SCHEMA_VERSION
from repro.profiling.cache import ProfileCache
from repro.service.backends import BACKENDS
from repro.service.executor import AnalysisExecutor
from repro.service.jobs import JOB_KINDS, JobStore, QueueFull

#: Per-client accounting keeps at most this many distinct identities; the
#: long tail aggregates under ``_other`` so a client-id cardinality attack
#: cannot balloon daemon memory or scrape size.
MAX_TRACKED_CLIENTS = 64


class AnalysisService:
    """The daemon: one job store, one worker pool, one HTTP server.

    ``port=0`` binds an ephemeral port (read it back from ``self.port``) —
    the idiom tests and embedded use rely on.  Run blocking with
    :meth:`serve_forever` (the CLI's ``repro serve``) or off-thread with
    :meth:`start_background`; either way :meth:`shutdown` stops the HTTP
    loop and the workers.

    *backend* selects the execution backend (:data:`BACKENDS`); *db_path*
    makes the job store durable across restarts (sqlite, WAL); *max_queue*
    arms admission control (queue at bound → 429 + ``Retry-After``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 2,
        cache: ProfileCache | None = None,
        cache_dir: str | None = None,
        max_history: int = 256,
        jsonl_path: str | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backend: str = "thread",
        db_path: str | None = None,
        max_queue: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {list(BACKENDS)}, got {backend!r}")
        self.store = JobStore(
            max_history=max_history,
            jsonl_path=jsonl_path,
            db_path=db_path,
            max_queue=max_queue,
            backend=backend,
        )
        self.executor = AnalysisExecutor(
            self.store,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            timeout=timeout,
            retries=retries,
            backend=backend,
        )
        self.backend = backend
        self.started_at = time.time()
        self._client_lock = threading.Lock()
        self._clients: dict[str, dict[str, int]] = {}
        self._client_requests = get_registry().counter(
            "repro_client_requests_total",
            "Submission outcomes per client identity",
            labelnames=("client", "outcome"),
        )
        handler = type("AnalysisRequestHandler", (_Handler,), {"service": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Start the workers and block serving HTTP until :meth:`shutdown`."""
        self.executor.start()
        self.httpd.serve_forever(poll_interval=0.2)

    def start_background(self) -> None:
        """Start workers + HTTP loop on a daemon thread and return."""
        self.executor.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop the HTTP loop, drain the workers, release socket + sqlite."""
        self.httpd.shutdown()
        self.httpd.server_close()
        # Wait for in-flight jobs so their terminal rows land in sqlite —
        # a clean shutdown leaves nothing for the next start to recover.
        self.executor.shutdown(wait=True)
        self.store.dispose()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- request-level operations (called from handler threads) ---------

    def record_client(self, client: str, outcome: str) -> None:
        """Tally one submission *outcome* for *client* (stats + metrics)."""
        with self._client_lock:
            if client not in self._clients and len(self._clients) >= MAX_TRACKED_CLIENTS:
                client = "_other"
            tallies = self._clients.setdefault(
                client, {"accepted": 0, "coalesced": 0, "rejected": 0}
            )
            tallies[outcome] = tallies.get(outcome, 0) + 1
        self._client_requests.labels(client=client, outcome=outcome).inc()

    def retry_after_s(self) -> int:
        """Seconds a 429'd client should wait before resubmitting.

        Estimated drain time for the current queue: depth x the store's
        run-time EMA / worker count, **rounded up to whole seconds** (RFC
        9110 §10.2.3 allows only integer ``delay-seconds`` in a
        ``Retry-After`` header) and clamped to [1, 60] so the hint is
        always usable even before any job has finished (EMA still zero).
        """
        counts = self.store.counts()
        avg = self.store.avg_run_s or 1.0
        estimate = counts["queue_depth"] * avg / max(1, self.executor.workers)
        return max(1, min(60, math.ceil(estimate)))

    def validate_submission(
        self, body: dict[str, Any]
    ) -> tuple[str, dict[str, Any], str | None]:
        """Validate a submission body without enqueueing anything.

        Returns ``(kind, payload, correlation_id)`` ready for the job
        store; raises :class:`ValueError` on any malformed field.  Batch
        submissions validate every item through here *first*, so a 400
        response guarantees nothing from the batch was enqueued.
        """
        kind = body.get("kind")
        if kind not in JOB_KINDS:
            raise ValueError(f"kind must be one of {list(JOB_KINDS)}, got {kind!r}")
        if kind == "source":
            if not body.get("source") or not body.get("entry"):
                raise ValueError("source jobs require 'source' and 'entry'")
            args = body.get("args", [])
            if not all(
                isinstance(a, (list, tuple)) and len(a) == 2 for a in args
            ):
                raise ValueError("'args' must be a list of [kind, value] pairs")
        elif kind == "bench":
            from repro.bench_programs.registry import all_benchmarks

            names = {spec.name for spec in all_benchmarks()}
            if body.get("name") not in names:
                raise ValueError(f"unknown benchmark {body.get('name')!r}")
            # campaign-cell knobs: reject malformed values at submission,
            # not as a failed job a poller discovers later
            scale = body.get("scale")
            if scale is not None:
                if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
                        or scale <= 0:
                    raise ValueError(f"'scale' must be a positive number, got {scale!r}")
            threshold = body.get("threshold")
            if threshold is not None:
                if not isinstance(threshold, (int, float)) or isinstance(threshold, bool) \
                        or not 0 <= threshold <= 1:
                    raise ValueError(
                        f"'threshold' must be a number in [0, 1], got {threshold!r}"
                    )
            min_pairs = body.get("min_pairs")
            if min_pairs is not None:
                if not isinstance(min_pairs, int) or isinstance(min_pairs, bool) \
                        or min_pairs < 0:
                    raise ValueError(
                        f"'min_pairs' must be a non-negative integer, got {min_pairs!r}"
                    )
            machine = body.get("machine")
            if machine is not None:
                import dataclasses

                from repro.sim.machine import Machine

                known_fields = {
                    f.name for f in dataclasses.fields(Machine) if f.name != "threads"
                }
                if not isinstance(machine, dict):
                    raise ValueError("'machine' must be a mapping of Machine fields")
                bad = sorted(set(machine) - known_fields)
                if bad:
                    raise ValueError(
                        f"unknown machine fields {bad!r}; "
                        f"expected a subset of {sorted(known_fields)}"
                    )
                for field, value in machine.items():
                    if not isinstance(value, (int, float)) or isinstance(value, bool) \
                            or value < 0:
                        raise ValueError(
                            f"machine field {field!r} must be a non-negative "
                            f"number, got {value!r}"
                        )
        elif kind == "sweep":
            # An unknown name must be a 400 here, not a failed job a poller
            # discovers minutes later.
            sweep_names = body.get("names")
            if sweep_names is not None:
                if not isinstance(sweep_names, (list, tuple)) or not all(
                    isinstance(n, str) for n in sweep_names
                ):
                    raise ValueError("'names' must be a list of benchmark names")
                from repro.bench_programs.registry import all_benchmarks

                known = {spec.name for spec in all_benchmarks()}
                unknown = sorted(set(sweep_names) - known)
                if unknown:
                    raise ValueError(f"unknown benchmarks {unknown!r}")
        correlation_id = body.get("correlation_id")
        if correlation_id is not None and not isinstance(correlation_id, str):
            raise ValueError("'correlation_id' must be a string")
        payload = {
            k: v for k, v in body.items() if k not in ("kind", "correlation_id")
        }
        return kind, payload, correlation_id

    def enqueue(
        self,
        kind: str,
        payload: dict[str, Any],
        correlation_id: str | None = None,
        client: str = "",
    ) -> dict[str, Any]:
        """Enqueue an already-validated submission, tallying per *client*.

        Lets :class:`QueueFull` propagate (HTTP 429) — admission-control
        rejections are tallied against *client* here so every rejection
        path is accounted.
        """
        try:
            job = self.store.submit(kind, payload, correlation_id=correlation_id)
        except QueueFull:
            if client:
                self.record_client(client, "rejected")
            raise
        if client:
            self.record_client(
                client, "coalesced" if job.coalesced_with is not None else "accepted"
            )
        return job.to_dict(include_result=False)

    def submit(self, body: dict[str, Any], client: str = "") -> dict[str, Any]:
        """Validate a submission body and enqueue it.

        Raises :class:`ValueError` for malformed bodies (HTTP 400) and
        lets :class:`QueueFull` propagate (HTTP 429).
        """
        kind, payload, correlation_id = self.validate_submission(body)
        return self.enqueue(kind, payload, correlation_id, client=client)

    def stats(self) -> dict[str, Any]:
        with self._client_lock:
            clients = {name: dict(t) for name, t in self._clients.items()}
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "backend": self.backend,
            "jobs": self.store.counts(),
            "admission": {
                "max_queue": self.store.max_queue,
                "rejected": self.store.rejected,
                "retry_after_s": self.retry_after_s(),
                "avg_run_s": round(self.store.avg_run_s, 6),
            },
            "clients": clients,
            "workers": {
                "count": self.executor.workers,
                "busy": self.executor.busy,
                "peak_busy": self.executor.peak_busy,
                "utilization": round(self.executor.utilization(), 4),
            },
            "cache": self.executor.cache.stats.as_dict(),
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` onto the owning :class:`AnalysisService`."""

    service: AnalysisService  # bound by the per-service subclass
    protocol_version = "HTTP/1.1"

    # The daemon prints one startup line; per-request logging stays off so
    # stdout/stderr remain usable in pipelines and tests.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send(
        self, status: int, doc: Any, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        self._send(status, {"error": message}, headers=headers)

    def _job_id(self, path: str) -> int | None:
        tail = path[len("/v1/jobs/"):]
        return int(tail) if tail.isdigit() else None

    def _client_id(self) -> str:
        """The caller's self-declared identity, or its remote address."""
        return (
            self.headers.get("X-Repro-Client", "").strip()
            or f"addr:{self.client_address[0]}"
        )

    def _guarded(self, handler) -> None:
        """Run *handler*; any unexpected failure becomes a JSON 500.

        Without this, a handler bug surfaces as ``http.server``'s HTML
        traceback page — unparseable by API clients and silent in the
        daemon's logs.  The log record keeps the detail; the response
        carries a one-line summary.
        """
        try:
            handler()
        except BrokenPipeError:
            pass  # client hung up mid-response; nothing to answer
        except Exception as exc:  # noqa: BLE001 — the catch-all is the point
            self.service.store.logger.error(
                "http.error",
                method=self.command,
                path=self.path,
                error=f"{type(exc).__name__}: {exc}",
            )
            try:
                self._error(500, f"internal error: {type(exc).__name__}: {exc}")
            except Exception:  # noqa: BLE001 — socket already unusable
                pass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._guarded(self._do_get)

    def do_POST(self) -> None:  # noqa: N802
        self._guarded(self._do_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._guarded(self._do_delete)

    def _do_get(self) -> None:
        url = urlparse(self.path)
        path = url.path.rstrip("/") or "/"
        if path == "/v1/health":
            self._send(200, {
                "status": "ok",
                "uptime_s": round(time.time() - self.service.started_at, 3),
            })
        elif path == "/v1/version":
            self._send(200, {
                "version": __version__,
                "schema_version": SCHEMA_VERSION,
            })
        elif path == "/v1/stats":
            self._send(200, self.service.stats())
        elif path == "/v1/metrics":
            self._send_text(200, get_registry().render())
        elif path == "/v1/jobs":
            query = parse_qs(url.query)
            limit_txt = query.get("limit", [None])[0]
            if limit_txt is not None and not limit_txt.isdigit():
                self._error(400, f"limit must be a non-negative integer, got {limit_txt!r}")
                return
            jobs = self.service.store.list_jobs(
                state=query.get("state", [None])[0],
                kind=query.get("kind", [None])[0],
                limit=int(limit_txt) if limit_txt is not None else None,
            )
            self._send(200, {
                "jobs": [job.to_dict(include_result=False) for job in jobs],
            })
        elif path.startswith("/v1/jobs/"):
            job_id = self._job_id(path)
            job = None if job_id is None else self.service.store.get(job_id)
            if job is None:
                self._error(404, f"no job {path[len('/v1/jobs/'):]!r}")
            else:
                self._send(200, job.to_dict())
        else:
            self._error(404, f"no route {path!r}")

    def _do_post(self) -> None:
        if urlparse(self.path).path.rstrip("/") != "/v1/jobs":
            self._error(404, f"no route {self.path!r}")
            return
        raw_length = self.headers.get("Content-Length", "0")
        # RFC 9110 §8.6: Content-Length is a non-negative decimal integer.
        # Validate before int() so a malformed header is a clean 400 with a
        # JSON body, not a bare ValueError bubbling toward the 500 path.
        if not raw_length.strip().isdigit():
            self._error(
                400,
                f"invalid Content-Length header: {raw_length!r} "
                "(must be a non-negative integer)",
            )
            return
        try:
            length = int(raw_length)
            body = json.loads(self.rfile.read(length) or b"{}")
            if isinstance(body, list):
                self._post_batch(body)
                return
            if not isinstance(body, dict):
                raise ValueError("submission body must be a JSON object or array")
            record = self.service.submit(body, client=self._client_id())
        except QueueFull as exc:
            self._error(
                429, str(exc),
                headers={"Retry-After": str(self.service.retry_after_s())},
            )
            return
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, str(exc))
            return
        self._send(202, record)

    def _post_batch(self, bodies: list[Any]) -> None:
        """A JSON array body: atomic validation, sequential admission.

        Every item is validated before anything is enqueued, so a 400
        (which names each invalid index) guarantees the batch had no
        effect.  Admission is then sequential; a queue-full mid-batch
        answers 429 with the records already ``accepted`` plus a
        ``Retry-After`` hint, and the client resubmits only the tail.
        """
        if not bodies:
            self._error(400, "batch submission must contain at least one job")
            return
        client = self._client_id()
        parsed: list[tuple[str, dict[str, Any], str | None]] = []
        invalid: list[dict[str, Any]] = []
        for index, item in enumerate(bodies):
            try:
                if not isinstance(item, dict):
                    raise ValueError("submission body must be a JSON object")
                parsed.append(self.service.validate_submission(item))
            except ValueError as exc:
                invalid.append({"index": index, "error": str(exc)})
        if invalid:
            self._send(400, {
                "error": f"{len(invalid)} invalid submission(s)",
                "items": invalid,
            })
            return
        accepted: list[dict[str, Any]] = []
        for kind, payload, correlation_id in parsed:
            try:
                accepted.append(
                    self.service.enqueue(kind, payload, correlation_id, client=client)
                )
            except QueueFull as exc:
                self._send(
                    429,
                    {"error": str(exc), "accepted": accepted},
                    headers={"Retry-After": str(self.service.retry_after_s())},
                )
                return
        self._send(202, {"jobs": accepted})

    def _do_delete(self) -> None:
        path = urlparse(self.path).path.rstrip("/")
        if not path.startswith("/v1/jobs/"):
            self._error(404, f"no route {path!r}")
            return
        job_id = self._job_id(path)
        if job_id is None:
            self._error(404, f"no job {path[len('/v1/jobs/'):]!r}")
            return
        try:
            job = self.service.store.cancel(job_id)
        except KeyError:
            self._error(404, f"no job {job_id}")
        except ValueError as exc:
            self._error(409, str(exc))
        else:
            self._send(200, job.to_dict(include_result=False))
