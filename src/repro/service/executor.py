"""Worker pool routing service jobs through the fault-tolerant analysis path.

The executor owns ``workers`` daemon threads that claim jobs from a
:class:`~repro.service.jobs.JobStore` and run them through
:func:`repro.runtime.parallel.run_one` — the same timeout / retry /
failure-record policy the registry sweep applies per program.  A job whose
analysis raises therefore lands as a ``failed`` record carrying the sweep's
structured error envelope, and the worker thread survives to claim the
next job: one crashing submission never takes the daemon down.

Job kinds:

``source``
    Compile a MiniC program, profile it through the daemon's **shared
    content-addressed cache** (repeat submissions of identical source +
    inputs skip the interpreter entirely), and run the detector pipeline.
    The result is the versioned analysis document — byte-identical, modulo
    trace wall-clock timings, to what ``repro detect --json --compact``
    prints for the same program.

``bench``
    One registered benchmark end to end (analysis + simulation), reusing
    the shared cache; the result is the sweep's
    :class:`~repro.runtime.parallel.BenchmarkOutcome` document.

``sweep``
    A full (or filtered) registry sweep through
    :func:`~repro.runtime.parallel.analyze_registry` in keep-going mode —
    per-program failures fill their slots as failure records without
    failing the job.

Timeouts: :func:`~repro.runtime.parallel.call_with_timeout` is SIGALRM
based, and worker threads are not the main thread, so ``source`` and
``bench`` jobs run unbounded in-process; ``sweep`` jobs submitted with
``parallel: true`` regain full per-program timeouts because the work moves
to process-pool workers (whose main threads can take the alarm).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer, activate
from repro.profiling.cache import ProfileCache, default_cache_root
from repro.profiling.hotspots import DEFAULT_THRESHOLD
from repro.runtime.parallel import FailedOutcome, run_one
from repro.service.jobs import Job, JobStore, build_call_args


class AnalysisExecutor:
    """Bounded pool of analysis workers over a shared :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        workers: int = 2,
        cache: ProfileCache | None = None,
        cache_dir: str | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
    ) -> None:
        self.store = store
        self.workers = max(1, workers)
        if cache is None:
            cache = ProfileCache(root=cache_dir if cache_dir else default_cache_root())
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._busy = 0
        #: high-water mark of concurrently running jobs — observable proof
        #: the worker bound held under saturation
        self.peak_busy = 0
        # Pool gauges read live state at scrape time (set_function), so they
        # can never go stale; the latest executor in the process wins the
        # callback, matching the one-daemon-per-process deployment.
        metrics = get_registry()
        metrics.gauge(
            "repro_pool_workers", "Size of the analysis worker pool"
        ).set_function(lambda: self.workers)
        metrics.gauge(
            "repro_pool_busy", "Workers currently running a job"
        ).set_function(lambda: self.busy)
        metrics.gauge(
            "repro_pool_peak_busy", "High-water mark of concurrently busy workers"
        ).set_function(lambda: self.peak_busy)
        metrics.gauge(
            "repro_jobs_queue_depth", "Jobs queued and not yet claimed"
        ).set_function(lambda: self.store.counts()["queue_depth"])

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for n in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-analysis-{n}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = True) -> None:
        """Stop claiming new jobs; optionally join the workers."""
        self._stop.set()
        self.store.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)
        self._threads.clear()

    @property
    def busy(self) -> int:
        with self._lock:
            return self._busy

    def utilization(self) -> float:
        """Fraction of workers currently running a job."""
        return self.busy / self.workers

    # -- worker loop ----------------------------------------------------

    def _worker(self) -> None:
        while not self._stop.is_set():
            job = self.store.claim(timeout=0.2)
            if job is None:
                continue
            with self._lock:
                self._busy += 1
                self.peak_busy = max(self.peak_busy, self._busy)
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._busy -= 1

    def _execute(self, job: Job) -> None:
        runners = {
            "source": self._run_source,
            "bench": self._run_bench,
            "sweep": self._run_sweep,
        }
        runner = runners[job.kind]
        timeout = job.payload.get("timeout", self.timeout)
        retries = int(job.payload.get("retries", self.retries))
        if job.kind == "sweep":
            # A sweep's timeout/retries are per-program knobs consumed by
            # analyze_registry; the job-level wrapper only catches the sweep
            # machinery itself crashing.
            timeout, retries = None, 0
        log = self.store.logger.bind(
            job_id=job.id, correlation_id=job.correlation_id, kind=job.kind
        )
        # One tracer per job, activated on this worker thread: every span the
        # analysis path opens below (parse, cache reads, detector stages)
        # joins this job's tree, and the queue wait — measured by the store's
        # timestamps, predating the tracer — is recorded into the same tree.
        tracer = Tracer()
        queue_wait_s = max(0.0, (job.started_at or 0.0) - job.submitted_at)
        tracer.record("job.queue_wait", queue_wait_s)
        with activate(tracer):
            with tracer.span("job.run", kind=job.kind):
                # run_one supplies the sweep's fault semantics: after
                # 1 + retries attempts the exhausted exception comes back as
                # a FailedOutcome instead of propagating into (and killing)
                # this worker thread.
                outcome = run_one(
                    f"job-{job.id}",
                    timeout=timeout,
                    retries=retries,
                    backoff=self.backoff,
                    analyze_fn=lambda _name, _cache_dir: runner(job.payload),
                    log=log,
                )
        telemetry = {"queue_wait_s": round(queue_wait_s, 6)}
        if isinstance(outcome, FailedOutcome):
            self.store.fail(job.id, outcome.to_dict(), info=telemetry)
        else:
            result, info = outcome
            self.store.finish(job.id, result, {**info, **telemetry})

    # -- job runners (each returns (result_document, info)) -------------

    def _run_source(self, payload: dict[str, Any]) -> tuple[dict, dict]:
        from repro.api import compile_source
        from repro.patterns.engine import analyze_profile
        from repro.patterns.schema import analysis_to_dict
        from repro.profiling.cache import cached_profile_runs

        program = compile_source(payload["source"])
        arg_sets = [
            build_call_args(payload.get("args", []), int(payload.get("seed", 0)))
        ]
        profile, hit = cached_profile_runs(
            program, payload["entry"], arg_sets, cache=self.cache
        )
        result = analyze_profile(
            program,
            profile,
            hotspot_threshold=float(payload.get("threshold", DEFAULT_THRESHOLD)),
        )
        return analysis_to_dict(result), {"profile_cache_hit": hit}

    def _run_bench(self, payload: dict[str, Any]) -> tuple[dict, dict]:
        # Mirrors parallel.analyze_one, but profiles through the daemon's
        # shared cache object so hits show up in /v1/stats.
        from repro.bench_programs.registry import get_benchmark
        from repro.lang.parser import parse_program
        from repro.lang.validate import validate_program
        from repro.patterns.engine import analyze
        from repro.runtime.parallel import outcome_from_analysis
        from repro.sim import plan_and_simulate

        before = self.cache.stats.hits
        spec = get_benchmark(payload["name"])
        program = parse_program(spec.source)
        validate_program(program)
        result = analyze(
            program,
            spec.entry,
            spec.arg_sets(),
            hotspot_threshold=spec.hotspot_threshold,
            min_pairs=spec.min_pairs,
            cache=self.cache,
        )
        outcome = outcome_from_analysis(spec, result, plan_and_simulate(result))
        return outcome.to_dict(), {"profile_cache_hit": self.cache.stats.hits > before}

    def _run_sweep(self, payload: dict[str, Any]) -> tuple[list, dict]:
        from repro.runtime.parallel import analyze_registry

        outcomes = analyze_registry(
            names=payload.get("names"),
            cache_dir=str(self.cache.root),
            parallel=bool(payload.get("parallel", False)),
            timeout=payload.get("timeout", self.timeout),
            retries=int(payload.get("retries", self.retries)),
            fail_fast=False,
        )
        failed = sum(1 for o in outcomes if isinstance(o, FailedOutcome))
        return (
            [o.to_dict() for o in outcomes],
            {"programs": len(outcomes), "failed": failed},
        )
