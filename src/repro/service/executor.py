"""Dispatcher: claimer threads feeding jobs to an execution backend.

The executor owns ``workers`` daemon threads that claim jobs from a
:class:`~repro.service.jobs.JobStore` and hand each one to an
:class:`~repro.service.backends.ExecutionBackend` — the seam where the
``thread`` and ``process`` backends plug in (see
:mod:`repro.service.backends` for what runs where and why).  Whatever the
backend, every job body runs under
:func:`repro.runtime.parallel.run_one` — the same timeout / retry /
failure-record policy the registry sweep applies per program — so a job
whose analysis raises lands as a ``failed`` record carrying the sweep's
structured error envelope, and the claimer thread survives to claim the
next job: one crashing submission never takes the daemon down.

With the ``thread`` backend the claimer thread runs the analysis itself
(GIL-bound, no SIGALRM timeouts for ``source``/``bench``); with the
``process`` backend it blocks on a process-pool future while the analysis
runs on a worker process's main thread (N GILs, real per-job timeouts) —
either way ``workers`` bounds the number of concurrently running jobs.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import get_registry
from repro.profiling.cache import ProfileCache, default_cache_root
from repro.runtime.parallel import FailedOutcome
from repro.service.backends import make_backend
from repro.service.jobs import Job, JobStore


class AnalysisExecutor:
    """Bounded pool of job claimers over a shared :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        workers: int = 2,
        cache: ProfileCache | None = None,
        cache_dir: str | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        backend: str = "thread",
    ) -> None:
        self.store = store
        self.workers = max(1, workers)
        if cache is None:
            cache = ProfileCache(root=cache_dir if cache_dir else default_cache_root())
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backend = make_backend(
            backend,
            cache,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            workers=self.workers,
        )
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._busy = 0
        #: high-water mark of concurrently running jobs — observable proof
        #: the worker bound held under saturation
        self.peak_busy = 0
        # Pool gauges read live state at scrape time (set_function), so they
        # can never go stale; the latest executor in the process wins the
        # callback, matching the one-daemon-per-process deployment.
        metrics = get_registry()
        metrics.gauge(
            "repro_pool_workers", "Size of the analysis worker pool"
        ).set_function(lambda: self.workers)
        metrics.gauge(
            "repro_pool_busy", "Workers currently running a job"
        ).set_function(lambda: self.busy)
        metrics.gauge(
            "repro_pool_peak_busy", "High-water mark of concurrently busy workers"
        ).set_function(lambda: self.peak_busy)
        metrics.gauge(
            "repro_jobs_queue_depth", "Jobs queued and not yet claimed"
        ).set_function(lambda: self.store.counts()["queue_depth"])

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the claimer threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for n in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-analysis-{n}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = True) -> None:
        """Stop claiming new jobs; optionally join the claimers."""
        self._stop.set()
        self.store.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)
        self._threads.clear()
        self.backend.shutdown()

    @property
    def busy(self) -> int:
        with self._lock:
            return self._busy

    def utilization(self) -> float:
        """Fraction of workers currently running a job."""
        return self.busy / self.workers

    # -- worker loop ----------------------------------------------------

    def _worker(self) -> None:
        while not self._stop.is_set():
            job = self.store.claim(timeout=0.2)
            if job is None:
                continue
            with self._lock:
                self._busy += 1
                self.peak_busy = max(self.peak_busy, self._busy)
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._busy -= 1

    def _execute(self, job: Job) -> None:
        log = self.store.logger.bind(
            job_id=job.id, correlation_id=job.correlation_id, kind=job.kind
        )
        queue_wait_s = max(0.0, (job.started_at or 0.0) - job.submitted_at)
        outcome = self.backend.run(job, queue_wait_s=queue_wait_s, log=log)
        telemetry = {"queue_wait_s": round(queue_wait_s, 6)}
        if isinstance(outcome, FailedOutcome):
            self.store.fail(job.id, outcome.to_dict(), info=telemetry)
        else:
            result, info = outcome
            self.store.finish(job.id, result, {**info, **telemetry})
