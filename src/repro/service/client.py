"""Blocking client for the analysis daemon (stdlib ``urllib`` only).

>>> client = ServiceClient("http://127.0.0.1:8765")
>>> job = client.submit_benchmark("reg_detect")
>>> record = client.wait(job["id"])
>>> record["result"]["label"]
'Multi-loop pipeline'

Every method returns the decoded JSON document; HTTP error responses
raise :class:`ServiceError` carrying the status code and the server's
``{"error": ...}`` payload.

Each submission is stamped with a client-generated ``correlation_id``
(:func:`repro.obs.logs.new_correlation_id`) unless the caller supplies
one, so a submitter can log the id on its side and grep the daemon's
structured log for the same job's every transition.

Every request also carries an ``X-Repro-Client`` identity header
(``REPRO_CLIENT_ID`` env var, else ``pid-<pid>``) — the daemon keys its
per-client accounting in ``/v1/stats`` and ``/v1/metrics`` on it.  When
admission control answers ``429``, submissions honor the server's
``Retry-After`` hint (capped at :attr:`ServiceClient.retry_after_cap`
seconds) and retry up to :attr:`ServiceClient.retry_limit` times before
surfacing the :class:`ServiceError` to the caller.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Iterable, Sequence

from repro.obs.logs import new_correlation_id

#: Environment override for the daemon address, honored by the CLI too.
URL_ENV_VAR = "REPRO_SERVICE_URL"

#: Environment override for the client identity header.
CLIENT_ID_ENV_VAR = "REPRO_CLIENT_ID"

DEFAULT_URL = "http://127.0.0.1:8765"


def default_service_url() -> str:
    return os.environ.get(URL_ENV_VAR) or DEFAULT_URL


def default_client_id() -> str:
    """This process's identity for the daemon's per-client accounting."""
    return os.environ.get(CLIENT_ID_ENV_VAR) or f"pid-{os.getpid()}"


def _parse_retry_after(hint: str | None) -> float | None:
    """Lenient ``Retry-After`` parse: seconds as a float, else ``None``.

    The daemon emits RFC 9110 integer ``delay-seconds``, but this client
    talks to whatever answers — be liberal in what we accept: numeric
    strings (integer or fractional) parse, anything else (HTTP-dates,
    garbage, empty) degrades to ``None`` rather than crashing the error
    path.  Negative values clamp to 0 so callers never sleep backwards.
    """
    if hint is None:
        return None
    try:
        return max(0.0, float(hint.strip()))
    except (ValueError, AttributeError):
        return None


class ServiceError(RuntimeError):
    """An HTTP error response from the daemon."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: float | None = None,
        payload: dict | None = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: the server's ``Retry-After`` hint in seconds, when sent (429)
        self.retry_after = retry_after
        #: the full JSON error document — batch submissions use the
        #: ``accepted`` prefix of a mid-batch 429 and the per-index
        #: ``items`` of a validation 400
        self.payload = payload or {}


class ServiceClient:
    """Thin blocking wrapper over the daemon's ``/v1`` endpoints."""

    def __init__(
        self,
        url: str | None = None,
        timeout: float = 30.0,
        client_id: str | None = None,
        retry_limit: int = 3,
        retry_after_cap: float = 5.0,
    ) -> None:
        self.url = (url or default_service_url()).rstrip("/")
        self.timeout = timeout
        self.client_id = client_id or default_client_id()
        #: how many 429s a submission absorbs before raising
        self.retry_limit = max(0, retry_limit)
        #: ceiling on a single honored ``Retry-After`` sleep — the server's
        #: hint is advisory and a saturated daemon may suggest up to 60s;
        #: interactive callers should not block that long per attempt
        self.retry_after_cap = retry_after_cap

    def _request(
        self, method: str, path: str, body: dict | list | None = None
    ) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"X-Repro-Client": self.client_id}
        if data:
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                doc = json.loads(exc.read())
            except (ValueError, OSError):
                doc = {}
            if not isinstance(doc, dict):
                doc = {}
            hint = exc.headers.get("Retry-After") if exc.headers else None
            raise ServiceError(
                exc.code,
                doc.get("error", str(exc)),
                retry_after=_parse_retry_after(hint),
                payload=doc,
            ) from None

    def _submit(self, body: dict[str, Any]) -> dict:
        """POST a submission, absorbing 429s per the server's hints."""
        attempts = 0
        while True:
            try:
                return self._request("POST", "/v1/jobs", body)
            except ServiceError as exc:
                if exc.status != 429 or attempts >= self.retry_limit:
                    raise
                attempts += 1
                hint = exc.retry_after if exc.retry_after is not None else 1.0
                time.sleep(max(0.0, min(hint, self.retry_after_cap)))

    # -- service-level ---------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def version(self) -> dict:
        return self._request("GET", "/v1/version")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """The daemon's ``/v1/metrics`` Prometheus text, verbatim."""
        request = urllib.request.Request(
            self.url + "/v1/metrics",
            method="GET",
            headers={"X-Repro-Client": self.client_id},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, str(exc)) from None

    def wait_healthy(self, timeout: float = 10.0, poll: float = 0.1) -> dict:
        """Poll ``/v1/health`` until the daemon answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (ServiceError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    # -- job submission --------------------------------------------------

    def submit_source(
        self,
        source: str,
        entry: str,
        args: Iterable[Sequence[str]] = (),
        seed: int = 0,
        threshold: float | None = None,
        **extra: Any,
    ) -> dict:
        """Submit MiniC source for analysis; returns the queued job record.

        *args* uses the portable ``(kind, value)`` spec of
        :func:`repro.service.jobs.build_call_args`.
        """
        body: dict[str, Any] = {
            "kind": "source",
            "source": source,
            "entry": entry,
            "args": [list(a) for a in args],
            "seed": seed,
            **extra,
        }
        if threshold is not None:
            body["threshold"] = threshold
        body.setdefault("correlation_id", new_correlation_id())
        return self._submit(body)

    def submit_benchmark(self, name: str, **extra: Any) -> dict:
        """Submit one registered benchmark by name."""
        body: dict[str, Any] = {"kind": "bench", "name": name, **extra}
        body.setdefault("correlation_id", new_correlation_id())
        return self._submit(body)

    def submit_sweep(self, names: Sequence[str] | None = None, **extra: Any) -> dict:
        """Submit a registry sweep (all benchmarks when *names* is None)."""
        body: dict[str, Any] = {"kind": "sweep", **extra}
        if names is not None:
            body["names"] = list(names)
        body.setdefault("correlation_id", new_correlation_id())
        return self._submit(body)

    def submit_many(self, bodies: Sequence[dict[str, Any]]) -> list[dict]:
        """Submit a batch of jobs in one POST; one queued record per body.

        Each body takes the same shape as the single-job endpoint accepts
        (``kind`` plus its fields) and is stamped with a fresh
        ``correlation_id`` unless it carries one.  The server validates
        the whole batch before admitting anything — a validation failure
        raises :class:`ServiceError` 400 whose ``payload["items"]`` names
        every invalid index, and nothing was enqueued.  A queue-full
        mid-batch (429) is absorbed by resubmitting only the unaccepted
        tail, honoring ``Retry-After``, up to :attr:`retry_limit` times;
        records accepted before the 429 are kept, never resubmitted.
        """
        pending = []
        for body in bodies:
            item = dict(body)
            item.setdefault("correlation_id", new_correlation_id())
            pending.append(item)
        records: list[dict] = []
        if not pending:
            return records
        attempts = 0
        while True:
            try:
                doc = self._request("POST", "/v1/jobs", pending)
                records.extend(doc["jobs"])
                return records
            except ServiceError as exc:
                if exc.status != 429 or attempts >= self.retry_limit:
                    raise
                accepted = exc.payload.get("accepted", [])
                records.extend(accepted)
                pending = pending[len(accepted):]
                attempts += 1
                hint = exc.retry_after if exc.retry_after is not None else 1.0
                time.sleep(max(0.0, min(hint, self.retry_after_cap)))

    # -- job queries -----------------------------------------------------

    def job(self, job_id: int) -> dict:
        """Full record (status + result/error) for one job."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self,
        state: str | None = None,
        kind: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """List retained jobs, newest first; *limit* truncates to the newest N
        (``limit=0`` is explicitly an empty listing)."""
        query = "&".join(
            f"{key}={value}"
            for key, value in (("state", state), ("kind", kind), ("limit", limit))
            if value is not None and value != ""
        )
        doc = self._request("GET", "/v1/jobs" + (f"?{query}" if query else ""))
        return doc["jobs"]

    def cancel(self, job_id: int) -> dict:
        """Cancel a job: immediate while queued, cooperative while running
        (the returned record then shows ``cancel_requested``).  Raises
        :class:`ServiceError` 409 once the job is terminal."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: int, timeout: float = 120.0, poll: float = 0.1) -> dict:
        """Block until the job reaches a terminal state; return its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout:g}s"
                )
            time.sleep(poll)
