"""Long-lived analysis service: job store, execution backends, HTTP daemon.

Turns the one-shot CLI pipeline into a queueing system: ``repro serve``
starts an :class:`AnalysisService` (a durable, digest-coalescing
:class:`~repro.service.jobs.JobStore` fed by HTTP submissions and drained
by the bounded :class:`~repro.service.executor.AnalysisExecutor` pool
through a pluggable :class:`~repro.service.backends.ExecutionBackend` —
``thread`` or ``process`` — over a shared profile cache), and
:class:`~repro.service.client.ServiceClient` / ``repro submit|jobs|result``
talk to it.  See ``docs/service.md``.
"""

from repro.service.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    ThreadBackend,
    execute_job,
    make_backend,
)
from repro.service.client import ServiceClient, ServiceError, default_service_url
from repro.service.executor import AnalysisExecutor
from repro.service.jobs import (
    JOB_KINDS,
    Job,
    JobStore,
    QueueFull,
    build_call_args,
    job_digest,
)
from repro.service.server import AnalysisService
from repro.service.store import SqliteJobLog

__all__ = [
    "AnalysisExecutor",
    "AnalysisService",
    "BACKENDS",
    "ExecutionBackend",
    "Job",
    "JobStore",
    "JOB_KINDS",
    "ProcessBackend",
    "QueueFull",
    "ServiceClient",
    "ServiceError",
    "SqliteJobLog",
    "ThreadBackend",
    "build_call_args",
    "default_service_url",
    "execute_job",
    "job_digest",
    "make_backend",
]
