"""Long-lived analysis service: job store, worker pool, HTTP daemon, client.

Turns the one-shot CLI pipeline into a queueing system: ``repro serve``
starts an :class:`AnalysisService` (a :class:`~repro.service.jobs.JobStore`
fed by HTTP submissions and drained by the bounded
:class:`~repro.service.executor.AnalysisExecutor` pool over a shared
profile cache), and :class:`~repro.service.client.ServiceClient` /
``repro submit|jobs|result`` talk to it.  See ``docs/service.md``.
"""

from repro.service.client import ServiceClient, ServiceError, default_service_url
from repro.service.executor import AnalysisExecutor
from repro.service.jobs import JOB_KINDS, Job, JobStore, build_call_args
from repro.service.server import AnalysisService

__all__ = [
    "AnalysisExecutor",
    "AnalysisService",
    "Job",
    "JobStore",
    "JOB_KINDS",
    "ServiceClient",
    "ServiceError",
    "build_call_args",
    "default_service_url",
]
