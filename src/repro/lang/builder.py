"""Programmatic MiniC construction DSL.

For generated kernels (tests, sweeps, synthetic workloads) it is often
easier to build the AST than to format source strings.  The builder wraps
expression construction with operator overloading and emits a validated
:class:`Program`:

>>> b = ProgramBuilder()
>>> with b.function("void", "scale", ("float", "A[]"), ("int", "n")) as f:
...     with f.for_loop("i", 0, f.var("n")) as i:
...         f.assign(f.index("A", i), f.index("A", i) * 2.0)
>>> program = b.build()

Every builder program round-trips through the printer/parser, so the
result is indistinguishable from parsed source (ids, regions, lines).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    IntLit,
    Param,
    Program,
    Return,
    Stmt,
    UnaryOp,
    VarDecl,
    VarLV,
    VarRef,
    While,
)
from repro.lang.parser import parse_program
from repro.lang.printer import format_program
from repro.lang.validate import validate_program


def _lift(value) -> Expr:
    """Coerce a Python value or builder expression to an AST expression."""
    if isinstance(value, E):
        return value.node
    if isinstance(value, bool):
        return IntLit(int(value))
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, float):
        return FloatLit(value)
    if isinstance(
        value, (IntLit, FloatLit, VarRef, ArrayRef, BinOp, UnaryOp, Call)
    ):
        return value
    raise TypeError(f"cannot use {value!r} as a MiniC expression")


class E:
    """Expression wrapper with operator overloading."""

    def __init__(self, node: Expr) -> None:
        self.node = node

    def _bin(self, op: str, other, swap: bool = False) -> "E":
        left, right = _lift(self), _lift(other)
        if swap:
            left, right = right, left
        return E(BinOp(op, left, right))

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, swap=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, swap=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, swap=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, swap=True)

    def __mod__(self, other):
        return self._bin("%", other)

    def __lt__(self, other):
        return self._bin("<", other)

    def __le__(self, other):
        return self._bin("<=", other)

    def __gt__(self, other):
        return self._bin(">", other)

    def __ge__(self, other):
        return self._bin(">=", other)

    def eq(self, other) -> "E":
        return self._bin("==", other)

    def ne(self, other) -> "E":
        return self._bin("!=", other)

    def __neg__(self):
        return E(UnaryOp("-", _lift(self)))


class FunctionBuilder:
    """Builds one function's statement list."""

    def __init__(self, ret_type: str, name: str, params: list[Param]) -> None:
        self._func = Function(ret_type=ret_type, name=name, params=params)
        self._stack: list[list[Stmt]] = [self._func.body]
        self._fresh = 0

    # -- expressions -----------------------------------------------------

    def var(self, name: str) -> E:
        return E(VarRef(name))

    def index(self, name: str, *indices) -> E:
        return E(ArrayRef(name, [_lift(ix) for ix in indices]))

    def call(self, name: str, *args) -> E:
        return E(Call(name, [_lift(a) for a in args]))

    # -- statements -------------------------------------------------------

    def _emit(self, stmt: Stmt) -> None:
        self._stack[-1].append(stmt)

    def declare(self, type_: str, name: str, init=None) -> E:
        self._emit(
            VarDecl(type=type_, name=name, init=None if init is None else _lift(init))
        )
        return self.var(name)

    def declare_array(self, type_: str, name: str, *dims) -> None:
        self._emit(VarDecl(type=type_, name=name, dims=[_lift(d) for d in dims]))

    def assign(self, target, value, op: str = "=") -> None:
        node = _lift(target)
        if isinstance(node, VarRef):
            lv = VarLV(node.name)
        elif isinstance(node, ArrayRef):
            lv = ArrayLV(node.name, node.indices)
        else:
            raise TypeError("assignment target must be a variable or element")
        self._emit(Assign(target=lv, op=op, value=_lift(value)))

    def add_assign(self, target, value) -> None:
        self.assign(target, value, op="+=")

    def expr_stmt(self, expr) -> None:
        self._emit(ExprStmt(expr=_lift(expr)))

    def ret(self, value=None) -> None:
        self._emit(Return(value=None if value is None else _lift(value)))

    @contextmanager
    def for_loop(self, name: str, start, bound, step: int = 1) -> Iterator[E]:
        loop = For(
            init=VarDecl(type="int", name=name, init=_lift(start)),
            cond=BinOp("<", VarRef(name), _lift(bound)),
            step=Assign(target=VarLV(name), op="+=", value=IntLit(step)),
        )
        self._emit(loop)
        self._stack.append(loop.body)
        try:
            yield self.var(name)
        finally:
            self._stack.pop()

    @contextmanager
    def while_loop(self, cond) -> Iterator[None]:
        loop = While(cond=_lift(cond))
        self._emit(loop)
        self._stack.append(loop.body)
        try:
            yield None
        finally:
            self._stack.pop()

    @contextmanager
    def if_then(self, cond) -> Iterator[None]:
        stmt = If(cond=_lift(cond), then_body=[])
        self._emit(stmt)
        self._stack.append(stmt.then_body)
        try:
            yield None
        finally:
            self._stack.pop()

    @contextmanager
    def else_branch(self) -> Iterator[None]:
        last = self._stack[-1][-1] if self._stack[-1] else None
        if not isinstance(last, If):
            raise ValueError("else_branch() must directly follow if_then()")
        self._stack.append(last.else_body)
        try:
            yield None
        finally:
            self._stack.pop()


def _parse_param(type_: str, spec: str) -> Param:
    by_ref = spec.startswith("&")
    name = spec.lstrip("&")
    rank = name.count("[]")
    name = name.replace("[]", "")
    return Param(type=type_, name=name, array_rank=rank, by_ref=by_ref)


class ProgramBuilder:
    """Accumulates globals and functions; ``build()`` returns a Program."""

    def __init__(self) -> None:
        self._globals: list[VarDecl] = []
        self._functions: list[Function] = []

    def global_scalar(self, type_: str, name: str, init=None) -> None:
        self._globals.append(
            VarDecl(type=type_, name=name, init=None if init is None else _lift(init))
        )

    def global_array(self, type_: str, name: str, *dims: int) -> None:
        self._globals.append(
            VarDecl(type=type_, name=name, dims=[IntLit(d) for d in dims])
        )

    @contextmanager
    def function(
        self, ret_type: str, name: str, *params: tuple[str, str]
    ) -> Iterator[FunctionBuilder]:
        fb = FunctionBuilder(
            ret_type, name, [_parse_param(t, spec) for t, spec in params]
        )
        yield fb
        self._functions.append(fb._func)

    def build(self) -> Program:
        """Materialize: print to source, re-parse, validate.

        The printer round-trip assigns real line numbers and region ids, so
        built programs behave exactly like parsed ones under the profiler.
        """
        draft = Program(globals=self._globals, functions=self._functions)
        source = format_program(draft)
        program = parse_program(source)
        validate_program(program)
        return program
