"""Hand-written lexer for MiniC.

The lexer turns source text into a list of :class:`~repro.lang.tokens.Token`.
It supports ``//`` line comments and ``/* */`` block comments, decimal integer
and floating-point literals (with optional exponent), identifiers, keywords,
and the operator/punctuation set of MiniC.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPS,
    PUNCT_CHARS,
    SINGLE_CHAR_OPS,
    Token,
    TokenType,
)


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC *source*, returning tokens terminated by an EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(msg, line=line)

    while i < n:
        ch = source[i]

        # -- whitespace -------------------------------------------------
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # -- comments ---------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise error("unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            col = 1
            continue

        start_col = col

        # -- numbers ----------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            if j < n and (source[j].isalpha() or source[j] == "_"):
                raise error(f"invalid numeric literal {text + source[j]!r}")
            ttype = TokenType.FLOAT_LIT if is_float else TokenType.INT_LIT
            tokens.append(Token(ttype, text, line, start_col))
            col += j - i
            i = j
            continue

        # -- identifiers and keywords ------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            ttype = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
            tokens.append(Token(ttype, text, line, start_col))
            col += j - i
            i = j
            continue

        # -- multi-char operators ----------------------------------------
        matched = False
        for op in MULTI_CHAR_OPS:
            if source.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, line, start_col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue

        # -- single-char operators and punctuation -----------------------
        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token(TokenType.OP, ch, line, start_col))
            i += 1
            col += 1
            continue
        if ch in PUNCT_CHARS:
            tokens.append(Token(TokenType.PUNCT, ch, line, start_col))
            i += 1
            col += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
