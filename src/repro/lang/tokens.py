"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    KEYWORD = "keyword"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words of MiniC.  ``int``/``float``/``void`` are the only types.
KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "for",
        "while",
        "return",
        "break",
        "continue",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
)

#: Single-character operators.
SINGLE_CHAR_OPS = frozenset("+-*/%<>=!&|")

#: Punctuation characters.
PUNCT_CHARS = frozenset("(){}[];,")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its 1-based source position."""

    type: TokenType
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}, L{self.line}:{self.col})"
