"""AST node definitions for MiniC.

Every node carries the 1-based source ``line`` it begins on.  After parsing,
:func:`assign_ids` walks the tree and assigns

* a unique ``stmt_id`` to every statement, and
* a unique ``region_id`` to every *control region* — each function body and
  each loop — mirroring the control regions DiscoPoP reports (Section II of
  the paper).

Regions are the currency of the profiler: the Program Execution Tree (PET)
nodes are dynamic activations of these static regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class IntLit:
    value: int
    line: int = 0


@dataclass
class FloatLit:
    value: float
    line: int = 0


@dataclass
class VarRef:
    """Read of a scalar variable."""

    name: str
    line: int = 0


@dataclass
class ArrayRef:
    """Read of an array element ``name[i][j]...``."""

    name: str
    indices: list["Expr"]
    line: int = 0


@dataclass
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class UnaryOp:
    op: str  # '-' or '!'
    operand: "Expr"
    line: int = 0


@dataclass
class Call:
    """Call of a user function or intrinsic, usable as expression or stmt."""

    name: str
    args: list["Expr"]
    line: int = 0


Expr = Union[IntLit, FloatLit, VarRef, ArrayRef, BinOp, UnaryOp, Call]

# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------


@dataclass
class VarLV:
    name: str
    line: int = 0


@dataclass
class ArrayLV:
    name: str
    indices: list[Expr]
    line: int = 0


LValue = Union[VarLV, ArrayLV]

# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class VarDecl:
    """Declaration ``int x = e;`` or ``float A[10][10];``.

    ``dims`` holds constant extent expressions for array declarations and is
    empty for scalars.  Globals allow only literal extents.
    """

    type: str  # 'int' | 'float'
    name: str
    dims: list[Expr] = field(default_factory=list)
    init: Expr | None = None
    line: int = 0
    stmt_id: int = -1


@dataclass
class Assign:
    """Assignment ``lv = e;`` with ``op`` in ``{'=', '+=', '-=', '*=', '/=', '%='}``."""

    target: LValue
    op: str
    value: Expr
    line: int = 0
    stmt_id: int = -1


@dataclass
class If:
    cond: Expr
    then_body: list["Stmt"]
    else_body: list["Stmt"] = field(default_factory=list)
    line: int = 0
    stmt_id: int = -1


@dataclass
class For:
    """C-style for loop.  ``init``/``step`` may be ``None``.

    A ``For`` is a control region; ``region_id`` is assigned by
    :func:`assign_ids`.  ``induction_vars`` collects scalar names written by
    the init/step clauses — these are excluded from loop-carried dependence
    classification exactly as a compiler would exclude the canonical
    induction variable.
    """

    init: Union["Assign", "VarDecl", None]
    cond: Expr | None
    step: Union["Assign", None]
    body: list["Stmt"] = field(default_factory=list)
    line: int = 0
    stmt_id: int = -1
    region_id: int = -1
    induction_vars: frozenset[str] = frozenset()


@dataclass
class While:
    cond: Expr
    body: list["Stmt"] = field(default_factory=list)
    line: int = 0
    stmt_id: int = -1
    region_id: int = -1
    induction_vars: frozenset[str] = frozenset()


@dataclass
class Return:
    value: Expr | None = None
    line: int = 0
    stmt_id: int = -1


@dataclass
class Break:
    line: int = 0
    stmt_id: int = -1


@dataclass
class Continue:
    line: int = 0
    stmt_id: int = -1


@dataclass
class ExprStmt:
    """A bare expression statement — in practice always a call."""

    expr: Expr
    line: int = 0
    stmt_id: int = -1


Stmt = Union[VarDecl, Assign, If, For, While, Return, Break, Continue, ExprStmt]

LOOP_TYPES = (For, While)

# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """Function parameter.

    * scalar by value:      ``int n``
    * scalar by reference:  ``int &sum``   (needed for Listing 9's reduction)
    * array by reference:   ``float A[]`` / ``float B[][]``
    """

    type: str
    name: str
    array_rank: int = 0
    by_ref: bool = False
    line: int = 0

    @property
    def is_array(self) -> bool:
        return self.array_rank > 0


@dataclass
class Function:
    ret_type: str  # 'int' | 'float' | 'void'
    name: str
    params: list[Param]
    body: list[Stmt] = field(default_factory=list)
    line: int = 0
    region_id: int = -1


@dataclass
class Program:
    """A parsed MiniC translation unit."""

    globals: list[VarDecl] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    source: str = ""
    #: region_id -> Region metadata, filled by assign_ids()
    regions: dict[int, "Region"] = field(default_factory=dict)
    #: stmt_id -> statement, filled by assign_ids()
    stmts: dict[int, Stmt] = field(default_factory=dict)

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        return any(f.name == name for f in self.functions)


@dataclass
class Region:
    """Static control region: a function body or a loop.

    ``parent`` is the region_id of the enclosing region (``None`` for
    function bodies).  ``function`` is the name of the enclosing function.
    """

    region_id: int
    kind: str  # 'function' | 'loop'
    name: str  # function name, or e.g. 'for@12'
    line: int
    function: str
    parent: int | None = None
    node: Function | For | While | None = None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def child_stmts(stmt: Stmt) -> Iterator[Stmt]:
    """Yield the immediate child statements of *stmt* (bodies flattened)."""
    if isinstance(stmt, If):
        yield from stmt.then_body
        yield from stmt.else_body
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield stmt.init
        if stmt.step is not None:
            yield stmt.step
        yield from stmt.body
    elif isinstance(stmt, While):
        yield from stmt.body


def walk_stmts(body: list[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in *body*, depth-first, including nested ones."""
    for stmt in body:
        yield stmt
        yield from walk_stmts(list(child_stmts(stmt)))


def stmt_exprs(stmt: Stmt) -> Iterator[Expr]:
    """Yield the expressions directly owned by *stmt* (not nested stmts)."""
    if isinstance(stmt, VarDecl):
        yield from stmt.dims
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, Assign):
        if isinstance(stmt.target, ArrayLV):
            yield from stmt.target.indices
        yield stmt.value
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, For):
        if stmt.cond is not None:
            yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ExprStmt):
        yield stmt.expr


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, ArrayRef):
        for ix in expr.indices:
            yield from walk_exprs(ix)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_exprs(arg)


def _induction_vars(loop: For | While) -> frozenset[str]:
    names: set[str] = set()
    if isinstance(loop, For):
        for clause in (loop.init, loop.step):
            if isinstance(clause, Assign) and isinstance(clause.target, VarLV):
                names.add(clause.target.name)
            elif isinstance(clause, VarDecl):
                names.add(clause.name)
    return frozenset(names)


def assign_ids(program: Program) -> Program:
    """Assign stmt_ids and region_ids; populate ``program.regions``/``stmts``.

    Idempotent: calling it again renumbers consistently.
    """
    program.regions = {}
    program.stmts = {}
    next_stmt = [0]
    next_region = [0]

    def new_region(kind: str, name: str, line: int, func: str, parent: int | None, node) -> int:
        rid = next_region[0]
        next_region[0] += 1
        program.regions[rid] = Region(
            region_id=rid, kind=kind, name=name, line=line, function=func, parent=parent, node=node
        )
        return rid

    def visit_body(body: list[Stmt], func: str, parent_region: int) -> None:
        for stmt in body:
            stmt.stmt_id = next_stmt[0]
            next_stmt[0] += 1
            program.stmts[stmt.stmt_id] = stmt
            if isinstance(stmt, (For, While)):
                label = f"{'for' if isinstance(stmt, For) else 'while'}@{stmt.line}"
                stmt.region_id = new_region("loop", label, stmt.line, func, parent_region, stmt)
                stmt.induction_vars = _induction_vars(stmt)
                inner: list[Stmt] = []
                if isinstance(stmt, For):
                    if stmt.init is not None:
                        inner.append(stmt.init)
                    if stmt.step is not None:
                        inner.append(stmt.step)
                for extra in inner:
                    extra.stmt_id = next_stmt[0]
                    next_stmt[0] += 1
                    program.stmts[extra.stmt_id] = extra
                visit_body(stmt.body, func, stmt.region_id)
            elif isinstance(stmt, If):
                visit_body(stmt.then_body, func, parent_region)
                visit_body(stmt.else_body, func, parent_region)

    for g in program.globals:
        g.stmt_id = next_stmt[0]
        next_stmt[0] += 1
        program.stmts[g.stmt_id] = g

    for func in program.functions:
        func.region_id = new_region("function", func.name, func.line, func.name, None, func)
        visit_body(func.body, func.name, func.region_id)

    return program
