"""Recursive-descent parser for MiniC.

The grammar (informal)::

    program   := (global | function)*
    global    := type IDENT dims ('=' expr)? ';'
    function  := type IDENT '(' params ')' block
    param     := type '&'? IDENT ('[' ']')*
    block     := '{' stmt* '}'
    stmt      := decl ';' | if | for | while | 'return' expr? ';'
               | 'break' ';' | 'continue' ';' | assign ';' | call ';'
    assign    := lvalue ('='|'+='|'-='|'*='|'/='|'%=') expr
               | lvalue '++' | lvalue '--'

Expressions use C precedence for ``|| && == != < <= > >= + - * / %`` with
unary ``-``/``!`` and postfix calls/indexing.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    IntLit,
    LValue,
    Param,
    Program,
    Return,
    Stmt,
    UnaryOp,
    VarDecl,
    VarLV,
    VarRef,
    While,
    assign_ids,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType

# Binary operator precedence, higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=")
_TYPES = ("int", "float", "void")


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.source = source

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text and self.peek().type is not TokenType.EOF

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.text != text or tok.type is TokenType.EOF:
            raise ParseError(f"expected {text!r}, found {tok.text!r}", line=tok.line)
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.type is not TokenType.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", line=tok.line)
        return self.advance()

    # -- top level ----------------------------------------------------------

    def parse(self) -> Program:
        program = Program(source=self.source)
        while self.peek().type is not TokenType.EOF:
            tok = self.peek()
            if tok.text not in _TYPES:
                raise ParseError(
                    f"expected type at top level, found {tok.text!r}", line=tok.line
                )
            # Lookahead: "type ident (" is a function, otherwise a global.
            after_name = self.peek(2)
            if after_name.text == "(":
                program.functions.append(self.parse_function())
            else:
                program.globals.append(self.parse_var_decl(allow_init=True))
                self.expect(";")
        return assign_ids(program)

    def parse_function(self) -> Function:
        type_tok = self.advance()
        name_tok = self.expect_ident()
        self.expect("(")
        params: list[Param] = []
        if not self.at(")"):
            while True:
                params.append(self.parse_param())
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return Function(
            ret_type=type_tok.text,
            name=name_tok.text,
            params=params,
            body=body,
            line=type_tok.line,
        )

    def parse_param(self) -> Param:
        type_tok = self.peek()
        if type_tok.text not in ("int", "float"):
            raise ParseError(
                f"expected parameter type, found {type_tok.text!r}", line=type_tok.line
            )
        self.advance()
        by_ref = self.accept("&")
        name_tok = self.expect_ident()
        rank = 0
        while self.accept("["):
            self.expect("]")
            rank += 1
        if by_ref and rank:
            raise ParseError("array parameters are implicitly by reference", line=name_tok.line)
        return Param(
            type=type_tok.text,
            name=name_tok.text,
            array_rank=rank,
            by_ref=by_ref,
            line=name_tok.line,
        )

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> list[Stmt]:
        self.expect("{")
        body: list[Stmt] = []
        while not self.at("}"):
            if self.peek().type is TokenType.EOF:
                raise ParseError("unterminated block", line=self.peek().line)
            body.append(self.parse_stmt())
        self.expect("}")
        return body

    def parse_stmt_or_block(self) -> list[Stmt]:
        if self.at("{"):
            return self.parse_block()
        return [self.parse_stmt()]

    def parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok.text in ("int", "float"):
            decl = self.parse_var_decl(allow_init=True)
            self.expect(";")
            return decl
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "return":
            self.advance()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return Return(value=value, line=tok.line)
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return Break(line=tok.line)
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return Continue(line=tok.line)
        stmt = self.parse_assign_or_call()
        self.expect(";")
        return stmt

    def parse_var_decl(self, allow_init: bool) -> VarDecl:
        type_tok = self.advance()
        if type_tok.text not in ("int", "float"):
            raise ParseError(f"expected type, found {type_tok.text!r}", line=type_tok.line)
        name_tok = self.expect_ident()
        dims: list[Expr] = []
        while self.accept("["):
            dims.append(self.parse_expr())
            self.expect("]")
        init: Expr | None = None
        if self.accept("="):
            if not allow_init:
                raise ParseError("initializer not allowed here", line=name_tok.line)
            if dims:
                raise ParseError("array declarations cannot have initializers", line=name_tok.line)
            init = self.parse_expr()
        return VarDecl(
            type=type_tok.text, name=name_tok.text, dims=dims, init=init, line=type_tok.line
        )

    def parse_if(self) -> If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_stmt_or_block()
        else_body: list[Stmt] = []
        if self.accept("else"):
            if self.at("if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_stmt_or_block()
        return If(cond=cond, then_body=then_body, else_body=else_body, line=tok.line)

    def parse_for(self) -> For:
        tok = self.expect("for")
        self.expect("(")
        init: Assign | VarDecl | None = None
        if not self.at(";"):
            if self.peek().text in ("int", "float"):
                init = self.parse_var_decl(allow_init=True)
            else:
                init = self._parse_assign_clause()
        self.expect(";")
        cond: Expr | None = None
        if not self.at(";"):
            cond = self.parse_expr()
        self.expect(";")
        step: Assign | None = None
        if not self.at(")"):
            step = self._parse_assign_clause()
        self.expect(")")
        body = self.parse_stmt_or_block()
        return For(init=init, cond=cond, step=step, body=body, line=tok.line)

    def parse_while(self) -> While:
        tok = self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt_or_block()
        return While(cond=cond, body=body, line=tok.line)

    def _parse_assign_clause(self) -> Assign:
        stmt = self.parse_assign_or_call()
        if not isinstance(stmt, Assign):
            raise ParseError("expected assignment", line=stmt.line)
        return stmt

    def parse_assign_or_call(self) -> Assign | ExprStmt:
        tok = self.peek()
        if tok.type is not TokenType.IDENT:
            raise ParseError(f"expected statement, found {tok.text!r}", line=tok.line)
        # Call statement: ident '(' ... but not followed by assignment.
        if self.peek(1).text == "(":
            expr = self.parse_expr()
            return ExprStmt(expr=expr, line=tok.line)
        lvalue = self.parse_lvalue()
        op_tok = self.peek()
        if op_tok.text in ("++", "--"):
            self.advance()
            one = IntLit(1, line=op_tok.line)
            return Assign(
                target=lvalue,
                op="+=" if op_tok.text == "++" else "-=",
                value=one,
                line=tok.line,
            )
        if op_tok.text not in _ASSIGN_OPS:
            raise ParseError(
                f"expected assignment operator, found {op_tok.text!r}", line=op_tok.line
            )
        self.advance()
        value = self.parse_expr()
        return Assign(target=lvalue, op=op_tok.text, value=value, line=tok.line)

    def parse_lvalue(self) -> LValue:
        name_tok = self.expect_ident()
        if self.at("["):
            indices: list[Expr] = []
            while self.accept("["):
                indices.append(self.parse_expr())
                self.expect("]")
            return ArrayLV(name=name_tok.text, indices=indices, line=name_tok.line)
        return VarLV(name=name_tok.text, line=name_tok.line)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_binary(1)

    def parse_binary(self, min_prec: int) -> Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.text, 0) if tok.type is TokenType.OP else 0
            if prec < min_prec or prec == 0:
                return left
            self.advance()
            right = self.parse_binary(prec + 1)
            left = BinOp(op=tok.text, left=left, right=right, line=tok.line)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.text in ("-", "!") and tok.type is TokenType.OP:
            self.advance()
            operand = self.parse_unary()
            return UnaryOp(op=tok.text, operand=operand, line=tok.line)
        if tok.text == "+" and tok.type is TokenType.OP:
            self.advance()
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        tok = self.peek()
        if tok.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.type is TokenType.INT_LIT:
            self.advance()
            return IntLit(int(tok.text), line=tok.line)
        if tok.type is TokenType.FLOAT_LIT:
            self.advance()
            return FloatLit(float(tok.text), line=tok.line)
        if tok.type is TokenType.IDENT:
            self.advance()
            if self.at("("):
                self.advance()
                args: list[Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return Call(name=tok.text, args=args, line=tok.line)
            if self.at("["):
                indices: list[Expr] = []
                while self.accept("["):
                    indices.append(self.parse_expr())
                    self.expect("]")
                return ArrayRef(name=tok.text, indices=indices, line=tok.line)
            return VarRef(name=tok.text, line=tok.line)
        raise ParseError(f"unexpected token {tok.text!r} in expression", line=tok.line)


def parse_program(source: str) -> Program:
    """Parse MiniC *source* into a :class:`Program` with ids assigned."""
    return _Parser(source).parse()
