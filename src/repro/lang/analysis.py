"""Static analysis helpers over MiniC ASTs.

These helpers answer purely lexical questions used throughout the library:
which variables a statement reads/writes, which functions it calls, the loop
structure of a function, and source LOC.  Dynamic (dependence) questions are
the profiler's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    Call,
    Expr,
    ExprStmt,
    For,
    Function,
    If,
    Program,
    Return,
    Stmt,
    UnaryOp,
    BinOp,
    VarDecl,
    VarLV,
    VarRef,
    While,
    child_stmts,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)


def expr_reads(expr: Expr) -> set[str]:
    """Names of variables read by *expr* (arrays count as their base name)."""
    reads: set[str] = set()
    for node in walk_exprs(expr):
        if isinstance(node, VarRef):
            reads.add(node.name)
        elif isinstance(node, ArrayRef):
            reads.add(node.name)
    return reads


def expr_calls(expr: Expr) -> list[Call]:
    """All call expressions inside *expr*, in evaluation order."""
    return [node for node in walk_exprs(expr) if isinstance(node, Call)]


def stmt_reads(stmt: Stmt, recursive: bool = True) -> set[str]:
    """Variables read by *stmt*; with *recursive*, includes nested bodies."""
    reads: set[str] = set()
    stmts = walk_stmts([stmt]) if recursive else [stmt]
    for s in stmts:
        for expr in stmt_exprs(s):
            reads.update(expr_reads(expr))
        if isinstance(s, Assign) and s.op != "=":
            # Compound assignment also reads the target.
            reads.add(s.target.name)
    return reads


def stmt_writes(stmt: Stmt, recursive: bool = True) -> set[str]:
    """Variables written by *stmt*; with *recursive*, includes nested bodies."""
    writes: set[str] = set()
    stmts = walk_stmts([stmt]) if recursive else [stmt]
    for s in stmts:
        if isinstance(s, Assign):
            writes.add(s.target.name)
        elif isinstance(s, VarDecl) and (s.init is not None or not s.dims):
            writes.add(s.name)
    return writes


def stmt_calls(stmt: Stmt, recursive: bool = True) -> list[Call]:
    """Call expressions inside *stmt*, in source order."""
    calls: list[Call] = []
    stmts = walk_stmts([stmt]) if recursive else [stmt]
    for s in stmts:
        for expr in stmt_exprs(s):
            calls.extend(expr_calls(expr))
    return calls


def stmt_declares(stmt: Stmt, recursive: bool = True) -> set[str]:
    """Variable names declared by *stmt* (including nested declarations)."""
    names: set[str] = set()
    stmts = walk_stmts([stmt]) if recursive else [stmt]
    for s in stmts:
        if isinstance(s, VarDecl):
            names.add(s.name)
    return names


def stmt_lines(stmt: Stmt) -> set[int]:
    """All source lines covered by *stmt* including nested statements."""
    lines: set[int] = set()
    for s in walk_stmts([stmt]):
        lines.add(s.line)
        for expr in stmt_exprs(s):
            for node in walk_exprs(expr):
                if node.line:
                    lines.add(node.line)
    return lines


def function_loops(func: Function) -> list[For | While]:
    """All loops in *func*, in source order, at any nesting depth."""
    return [s for s in walk_stmts(func.body) if isinstance(s, (For, While))]


def top_level_loops(body: list[Stmt]) -> list[For | While]:
    """Loops appearing in *body* (descending through ifs but not loops)."""
    loops: list[For | While] = []
    for stmt in body:
        if isinstance(stmt, (For, While)):
            loops.append(stmt)
        elif isinstance(stmt, If):
            loops.extend(top_level_loops(stmt.then_body))
            loops.extend(top_level_loops(stmt.else_body))
    return loops


def called_functions(func: Function, program: Program) -> list[Function]:
    """User functions called directly from *func* (unique, in call order)."""
    seen: set[str] = set()
    out: list[Function] = []
    for stmt in func.body:
        for call in stmt_calls(stmt):
            if call.name not in seen and program.has_function(call.name):
                seen.add(call.name)
                out.append(program.function(call.name))
    return out


def is_recursive(func: Function, program: Program) -> bool:
    """True when *func* can reach itself through direct calls."""
    seen: set[str] = set()
    stack = [func.name]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if not program.has_function(name):
            continue
        for callee in called_functions(program.function(name), program):
            if callee.name == func.name:
                return True
            stack.append(callee.name)
    return False


def array_names(program: Program) -> set[str]:
    """Every name bound to an array anywhere in *program* (globals,
    parameters, declarations)."""
    names: set[str] = set()
    for g in program.globals:
        if g.dims:
            names.add(g.name)
    for func in program.functions:
        for param in func.params:
            if param.is_array:
                names.add(param.name)
        for stmt in walk_stmts(func.body):
            if isinstance(stmt, VarDecl) and stmt.dims:
                names.add(stmt.name)
    return names


def source_loc(source: str) -> int:
    """Non-blank, non-comment-only lines of code, matching Table III's LOC."""
    count = 0
    in_block = False
    for raw in source.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block = True
                continue
            line = line.split("*/", 1)[1].strip()
        if not line or line.startswith("//"):
            continue
        count += 1
    return count


@dataclass
class LoopNestInfo:
    """Summary of a loop nest rooted at ``loop``."""

    loop: For | While
    depth: int
    inner: list["LoopNestInfo"] = field(default_factory=list)

    def flat(self) -> list[For | While]:
        loops = [self.loop]
        for child in self.inner:
            loops.extend(child.flat())
        return loops


def loop_nests(body: list[Stmt], depth: int = 0) -> list[LoopNestInfo]:
    """The loop-nest forest of *body*."""
    nests: list[LoopNestInfo] = []
    for stmt in body:
        if isinstance(stmt, (For, While)):
            info = LoopNestInfo(loop=stmt, depth=depth)
            info.inner = loop_nests(stmt.body, depth + 1)
            nests.append(info)
        elif isinstance(stmt, If):
            nests.extend(loop_nests(stmt.then_body, depth))
            nests.extend(loop_nests(stmt.else_body, depth))
    return nests


def max_loop_depth(func: Function) -> int:
    """Deepest loop nesting level in *func* (0 when loop-free)."""

    def depth_of(nests: list[LoopNestInfo]) -> int:
        best = 0
        for nest in nests:
            best = max(best, 1 + depth_of(nest.inner))
        return best

    return depth_of(loop_nests(func.body))


def stmt_has_early_exit(stmt: Stmt) -> bool:
    """True when *stmt* contains a ``return`` or ``break`` at any depth."""
    for s in walk_stmts([stmt]):
        if isinstance(s, Return):
            return True
    return False


def body_uses_var_after(body: list[Stmt], index: int, name: str) -> bool:
    """True when any statement after ``body[index]`` reads *name*."""
    for later in body[index + 1 :]:
        if name in stmt_reads(later):
            return True
    return False
