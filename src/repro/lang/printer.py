"""Source printer for MiniC ASTs.

``format_program`` emits compilable MiniC source from an AST.  The printer is
used by the transformation package to emit annotated parallel versions and by
tests as a round-trip oracle (parse → print → parse must yield an
equivalent AST).
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    IntLit,
    LValue,
    Param,
    Program,
    Return,
    Stmt,
    UnaryOp,
    VarDecl,
    VarLV,
    VarRef,
    While,
)

_INDENT = "    "


def format_expr(expr: Expr) -> str:
    """Render *expr* as MiniC source (fully parenthesized binaries)."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        text = repr(float(expr.value))
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return expr.name + "".join(f"[{format_expr(ix)}]" for ix in expr.indices)
    if isinstance(expr, UnaryOp):
        return f"{expr.op}({format_expr(expr.operand)})"
    if isinstance(expr, BinOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, Call):
        return f"{expr.name}({', '.join(format_expr(a) for a in expr.args)})"
    raise TypeError(f"unknown expression node {expr!r}")


def format_lvalue(lv: LValue) -> str:
    if isinstance(lv, VarLV):
        return lv.name
    if isinstance(lv, ArrayLV):
        return lv.name + "".join(f"[{format_expr(ix)}]" for ix in lv.indices)
    raise TypeError(f"unknown lvalue node {lv!r}")


def _format_decl(decl: VarDecl) -> str:
    text = f"{decl.type} {decl.name}"
    text += "".join(f"[{format_expr(d)}]" for d in decl.dims)
    if decl.init is not None:
        text += f" = {format_expr(decl.init)}"
    return text


def _format_inline_assign(stmt: Assign | VarDecl | None) -> str:
    if stmt is None:
        return ""
    if isinstance(stmt, VarDecl):
        return _format_decl(stmt)
    return f"{format_lvalue(stmt.target)} {stmt.op} {format_expr(stmt.value)}"


def format_stmt(stmt: Stmt, indent: int = 0, annotations: dict[int, list[str]] | None = None) -> list[str]:
    """Render *stmt* as a list of source lines.

    *annotations* maps ``stmt_id`` to pragma-style comment lines emitted
    immediately before the statement (used by ``repro.transform``).
    """
    pad = _INDENT * indent
    lines: list[str] = []
    if annotations:
        for note in annotations.get(stmt.stmt_id, ()):
            lines.append(f"{pad}// {note}")

    def block(body: list[Stmt]) -> list[str]:
        inner: list[str] = []
        for child in body:
            inner.extend(format_stmt(child, indent + 1, annotations))
        return inner

    if isinstance(stmt, VarDecl):
        lines.append(f"{pad}{_format_decl(stmt)};")
    elif isinstance(stmt, Assign):
        lines.append(f"{pad}{format_lvalue(stmt.target)} {stmt.op} {format_expr(stmt.value)};")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({format_expr(stmt.cond)}) {{")
        lines.extend(block(stmt.then_body))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            lines.extend(block(stmt.else_body))
        lines.append(f"{pad}}}")
    elif isinstance(stmt, For):
        init = _format_inline_assign(stmt.init)
        cond = format_expr(stmt.cond) if stmt.cond is not None else ""
        step = _format_inline_assign(stmt.step)
        lines.append(f"{pad}for ({init}; {cond}; {step}) {{")
        lines.extend(block(stmt.body))
        lines.append(f"{pad}}}")
    elif isinstance(stmt, While):
        lines.append(f"{pad}while ({format_expr(stmt.cond)}) {{")
        lines.extend(block(stmt.body))
        lines.append(f"{pad}}}")
    elif isinstance(stmt, Return):
        if stmt.value is None:
            lines.append(f"{pad}return;")
        else:
            lines.append(f"{pad}return {format_expr(stmt.value)};")
    elif isinstance(stmt, Break):
        lines.append(f"{pad}break;")
    elif isinstance(stmt, Continue):
        lines.append(f"{pad}continue;")
    elif isinstance(stmt, ExprStmt):
        lines.append(f"{pad}{format_expr(stmt.expr)};")
    else:
        raise TypeError(f"unknown statement node {stmt!r}")
    return lines


def _format_param(param: Param) -> str:
    ref = "&" if param.by_ref else ""
    suffix = "[]" * param.array_rank
    return f"{param.type} {ref}{param.name}{suffix}"


def format_function(func: Function, annotations: dict[int, list[str]] | None = None) -> list[str]:
    params = ", ".join(_format_param(p) for p in func.params)
    lines = [f"{func.ret_type} {func.name}({params}) {{"]
    for stmt in func.body:
        lines.extend(format_stmt(stmt, 1, annotations))
    lines.append("}")
    return lines


def format_program(program: Program, annotations: dict[int, list[str]] | None = None) -> str:
    """Render the whole program as MiniC source text."""
    lines: list[str] = []
    for g in program.globals:
        lines.append(f"{_format_decl(g)};")
    if program.globals:
        lines.append("")
    for i, func in enumerate(program.functions):
        if i:
            lines.append("")
        lines.extend(format_function(func, annotations))
    return "\n".join(lines) + "\n"
