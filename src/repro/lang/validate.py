"""Semantic validation of parsed MiniC programs.

The validator catches the errors most likely to produce confusing dynamic
failures: undeclared variables, arity mismatches, indexing scalars,
re-declaration in the same scope, ``break``/``continue`` outside loops, and
calls to unknown functions (intrinsics excepted).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    Break,
    Call,
    Continue,
    Expr,
    ExprStmt,
    For,
    Function,
    If,
    Program,
    Return,
    Stmt,
    VarDecl,
    VarLV,
    VarRef,
    While,
    walk_exprs,
    stmt_exprs,
)
from repro.runtime.intrinsics import INTRINSICS


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.vars: dict[str, int] = {}  # name -> array rank

    def declare(self, name: str, rank: int, line: int) -> None:
        if name in self.vars:
            raise ValidationError(f"redeclaration of {name!r}", line=line)
        self.vars[name] = rank

    def lookup(self, name: str) -> int | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` on the first semantic problem found."""
    func_arity = {f.name: len(f.params) for f in program.functions}
    globals_scope = _Scope()
    for g in program.globals:
        globals_scope.declare(g.name, len(g.dims), g.line)
        if g.init is not None:
            _check_expr(g.init, globals_scope, func_arity)

    seen_funcs: set[str] = set()
    for func in program.functions:
        if func.name in seen_funcs:
            raise ValidationError(f"duplicate function {func.name!r}", line=func.line)
        if func.name in INTRINSICS:
            raise ValidationError(
                f"function {func.name!r} shadows an intrinsic", line=func.line
            )
        seen_funcs.add(func.name)
        scope = _Scope(globals_scope)
        for param in func.params:
            scope.declare(param.name, param.array_rank, param.line)
        # The body's top level shares the parameter scope (as in C): a
        # declaration there may not redeclare a parameter.
        for stmt in func.body:
            _check_stmt(stmt, scope, func_arity, in_loop=False)


def _check_body(body: list[Stmt], scope: _Scope, funcs: dict[str, int], in_loop: bool) -> None:
    local = _Scope(scope)
    for stmt in body:
        _check_stmt(stmt, local, funcs, in_loop)


def _check_stmt(stmt: Stmt, scope: _Scope, funcs: dict[str, int], in_loop: bool) -> None:
    if isinstance(stmt, VarDecl):
        for dim in stmt.dims:
            _check_expr(dim, scope, funcs)
        if stmt.init is not None:
            _check_expr(stmt.init, scope, funcs)
        scope.declare(stmt.name, len(stmt.dims), stmt.line)
    elif isinstance(stmt, Assign):
        rank = scope.lookup(stmt.target.name)
        if rank is None:
            raise ValidationError(f"assignment to undeclared {stmt.target.name!r}", line=stmt.line)
        if isinstance(stmt.target, ArrayLV):
            if rank == 0:
                raise ValidationError(f"indexing scalar {stmt.target.name!r}", line=stmt.line)
            if len(stmt.target.indices) != rank:
                raise ValidationError(
                    f"{stmt.target.name!r} expects {rank} indices, got {len(stmt.target.indices)}",
                    line=stmt.line,
                )
            for ix in stmt.target.indices:
                _check_expr(ix, scope, funcs)
        elif rank != 0:
            raise ValidationError(
                f"cannot assign whole array {stmt.target.name!r}", line=stmt.line
            )
        _check_expr(stmt.value, scope, funcs)
    elif isinstance(stmt, If):
        _check_expr(stmt.cond, scope, funcs)
        _check_body(stmt.then_body, scope, funcs, in_loop)
        _check_body(stmt.else_body, scope, funcs, in_loop)
    elif isinstance(stmt, For):
        loop_scope = _Scope(scope)
        if stmt.init is not None:
            _check_stmt(stmt.init, loop_scope, funcs, in_loop)
        if stmt.cond is not None:
            _check_expr(stmt.cond, loop_scope, funcs)
        if stmt.step is not None:
            _check_stmt(stmt.step, loop_scope, funcs, in_loop)
        _check_body(stmt.body, loop_scope, funcs, in_loop=True)
    elif isinstance(stmt, While):
        _check_expr(stmt.cond, scope, funcs)
        _check_body(stmt.body, scope, funcs, in_loop=True)
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            _check_expr(stmt.value, scope, funcs)
    elif isinstance(stmt, (Break, Continue)):
        if not in_loop:
            kind = "break" if isinstance(stmt, Break) else "continue"
            raise ValidationError(f"{kind} outside loop", line=stmt.line)
    elif isinstance(stmt, ExprStmt):
        _check_expr(stmt.expr, scope, funcs)
    else:  # pragma: no cover - exhaustiveness guard
        raise ValidationError(f"unknown statement {stmt!r}", line=getattr(stmt, "line", None))


def _check_expr(expr: Expr, scope: _Scope, funcs: dict[str, int]) -> None:
    for node in walk_exprs(expr):
        if isinstance(node, VarRef):
            rank = scope.lookup(node.name)
            if rank is None:
                raise ValidationError(f"use of undeclared {node.name!r}", line=node.line)
        elif isinstance(node, ArrayRef):
            rank = scope.lookup(node.name)
            if rank is None:
                raise ValidationError(f"use of undeclared {node.name!r}", line=node.line)
            if rank == 0:
                raise ValidationError(f"indexing scalar {node.name!r}", line=node.line)
            if len(node.indices) != rank:
                raise ValidationError(
                    f"{node.name!r} expects {rank} indices, got {len(node.indices)}",
                    line=node.line,
                )
        elif isinstance(node, Call):
            if node.name in INTRINSICS:
                spec = INTRINSICS[node.name]
                if spec.arity is not None and len(node.args) != spec.arity:
                    raise ValidationError(
                        f"intrinsic {node.name!r} expects {spec.arity} args, got {len(node.args)}",
                        line=node.line,
                    )
            elif node.name in funcs:
                if len(node.args) != funcs[node.name]:
                    raise ValidationError(
                        f"function {node.name!r} expects {funcs[node.name]} args, "
                        f"got {len(node.args)}",
                        line=node.line,
                    )
            else:
                raise ValidationError(f"call to unknown function {node.name!r}", line=node.line)
