"""MiniC: the small C-like language used as the analysis substrate.

The paper analyzes C/C++ programs through LLVM.  This package provides the
equivalent substrate for a pure-Python reproduction: a lexer, a
recursive-descent parser producing a typed AST with source line information,
a source printer, a programmatic builder DSL, and static-analysis helpers.

The public entry point is :func:`parse_program`.
"""

from repro.lang.ast_nodes import (
    ArrayLV,
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    ExprStmt,
    FloatLit,
    For,
    Function,
    If,
    IntLit,
    Param,
    Program,
    Region,
    Return,
    UnaryOp,
    VarDecl,
    VarLV,
    VarRef,
    While,
)
from repro.lang.builder import E, FunctionBuilder, ProgramBuilder
from repro.lang.parser import parse_program
from repro.lang.printer import format_program

__all__ = [
    "ArrayLV",
    "ArrayRef",
    "Assign",
    "BinOp",
    "Break",
    "Call",
    "Continue",
    "ExprStmt",
    "FloatLit",
    "For",
    "Function",
    "If",
    "IntLit",
    "Param",
    "Program",
    "Region",
    "Return",
    "UnaryOp",
    "VarDecl",
    "VarLV",
    "VarRef",
    "While",
    "parse_program",
    "format_program",
    "ProgramBuilder",
    "FunctionBuilder",
    "E",
]
