"""Structured JSON logging with per-job correlation ids.

One :class:`JsonLogger` writes one JSON object per line — ``ts``,
``level``, ``event``, any bound context, and the call's fields — to a
file path or stream.  :meth:`JsonLogger.bind` returns a child logger with
extra context baked in, which is how a job's ``correlation_id`` follows
the submission from :class:`~repro.service.client.ServiceClient` through
the :class:`~repro.service.jobs.JobStore`, the executor worker, and
:func:`~repro.runtime.parallel.run_one` without any signature carrying it
explicitly: each layer binds once and logs normally.

The default process logger is a **null sink** (drops everything at the
cost of one attribute check), so library code logs unconditionally and
pays nothing unless the daemon — or a test — configured a destination.
Writes are best-effort like the job store's old JSONL transition log:
an unwritable path bumps :attr:`JsonLogger.errors` and the program keeps
running.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Any, TextIO


def new_correlation_id() -> str:
    """A fresh id tying one submission's records together across layers."""
    return uuid.uuid4().hex


class _Sink:
    """Shared destination (path or stream) behind one lock + error count."""

    def __init__(self, path: str | None = None, stream: TextIO | None = None) -> None:
        self.path = path
        self.stream = stream
        self.lock = threading.Lock()
        self.errors = 0

    @property
    def active(self) -> bool:
        return self.path is not None or self.stream is not None

    def write_line(self, line: str) -> None:
        try:
            with self.lock:
                if self.stream is not None:
                    self.stream.write(line + "\n")
                elif self.path is not None:
                    with open(self.path, "a") as fh:
                        fh.write(line + "\n")
        except (OSError, ValueError):  # ValueError: stream already closed
            self.errors += 1


class JsonLogger:
    """Line-per-record JSON logger with bindable context."""

    def __init__(
        self,
        path: str | None = None,
        stream: TextIO | None = None,
        context: dict[str, Any] | None = None,
        _sink: _Sink | None = None,
    ) -> None:
        self._sink = _sink if _sink is not None else _Sink(path=path, stream=stream)
        self._context = dict(context or {})

    @property
    def errors(self) -> int:
        """Failed writes (unwritable path, closed stream) — best-effort."""
        return self._sink.errors

    @property
    def active(self) -> bool:
        """Whether records go anywhere at all."""
        return self._sink.active

    @property
    def context(self) -> dict[str, Any]:
        return dict(self._context)

    def bind(self, **context: Any) -> "JsonLogger":
        """A child logger sharing this sink, with *context* merged in."""
        merged = dict(self._context)
        merged.update(context)
        return JsonLogger(context=merged, _sink=self._sink)

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        """Emit one record; a silent no-op on the null sink."""
        if not self._sink.active:
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
        }
        record.update(self._context)
        record.update(fields)
        self._sink.write_line(json.dumps(record, sort_keys=True, default=str))

    def info(self, event: str, **fields: Any) -> None:
        self.log(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, level="error", **fields)


_global_logger = JsonLogger()


def get_logger() -> JsonLogger:
    """The process logger (a null sink until :func:`configure_logging`)."""
    return _global_logger


def configure_logging(
    path: str | None = None, stream: TextIO | None = None
) -> JsonLogger:
    """Point the process logger at *path* or *stream*; returns it.

    Call with neither to reset to the null sink.  Loggers bound from the
    previous configuration keep their old sink (configuration is not
    retroactive) — rebind from :func:`get_logger` after configuring.
    """
    global _global_logger
    _global_logger = JsonLogger(path=path, stream=stream)
    return _global_logger
