"""Hierarchical span tracing for the analysis pipeline.

Generalizes the flat per-stage :class:`~repro.patterns.framework.StageTrace`
telemetry into a tree: a :class:`Tracer` hands out :class:`Span` context
managers whose parent is whatever span is open on the current thread, so
one job's trace reads::

    job.run
    ├── parse
    ├── profile
    │   ├── cache.read          (miss)
    │   └── cache.store
    └── detect
        ├── detector:loop-classes
        ├── detector:pipelines
        └── ...

Span ids are small per-tracer sequence numbers (deterministic for a
deterministic code path — no randomness, which also keeps the analysis
document replayable); start offsets are relative to the tracer's creation.
Spans recorded during detection are attached to the result's
``trace.spans`` and serialized by :mod:`repro.patterns.schema` as a
tolerated extension block of the versioned analysis document.

Instrumented modules do not thread a tracer through their signatures:
:func:`activate` installs one on the current thread and the free function
:func:`span` opens a child of it — or does nothing at all when no tracer
is active, so library callers pay one thread-local read.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import metrics_enabled


@dataclass
class Span:
    """One timed operation: name, tree position, wall clock, attributes."""

    name: str
    span_id: int
    parent_id: int | None = None
    #: seconds since the owning tracer was created (monotonic clock)
    start_s: float = 0.0
    duration_s: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (JSON-scalar values) to the span."""
        self.attrs.update(attrs)
        return self


#: Shared do-nothing span yielded when tracing is inactive or disabled.
class _NoopSpan:
    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans; safe to use from several threads at once.

    The open-span stack is thread-local (each thread nests independently)
    while the finished list is shared, so a tracer can follow a job across
    the claiming worker thread and any helpers it spawns.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self._spans: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _new_span(self, name: str, attrs: dict[str, Any]) -> Span:
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            name=name,
            span_id=span_id,
            parent_id=parent,
            start_s=round(time.perf_counter() - self._t0, 6),
            attrs=attrs,
        )

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span | _NoopSpan]:
        """Open a child of the current thread's innermost span."""
        if not metrics_enabled():
            yield NOOP_SPAN
            return
        sp = self._new_span(name, dict(attrs))
        stack = self._stack()
        stack.append(sp)
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.duration_s = round(time.perf_counter() - t0, 6)
            stack.pop()
            with self._lock:
                self._spans.append(sp)

    def record(self, name: str, duration_s: float, **attrs: Any) -> Span | _NoopSpan:
        """Append an already-measured span (e.g. a job's queue wait, whose
        start predates the tracer)."""
        if not metrics_enabled():
            return NOOP_SPAN
        sp = self._new_span(name, dict(attrs))
        sp.duration_s = round(duration_s, 6)
        with self._lock:
            self._spans.append(sp)
        return sp

    def finished(self) -> list[Span]:
        """Snapshot of the spans closed so far, in completion order."""
        with self._lock:
            return list(self._spans)


# -- thread-local active tracer ---------------------------------------------

_active = threading.local()


def current_tracer() -> Tracer | None:
    """The tracer installed on this thread, or None."""
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as this thread's current tracer for the block."""
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = []
        _active.stack = stack
    stack.append(tracer)
    try:
        yield tracer
    finally:
        stack.pop()


@contextmanager
def ensure_tracer() -> Iterator[Tracer]:
    """The current tracer, or a fresh one activated for the block."""
    tracer = current_tracer()
    if tracer is not None:
        yield tracer
        return
    tracer = Tracer()
    with activate(tracer):
        yield tracer


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | _NoopSpan]:
    """Open a span on the current tracer; a no-op when none is active.

    This is the call sites' entry point: library code (cache reads, parse,
    profile) is instrumented unconditionally and records nothing unless an
    analysis or job has activated a tracer on this thread.
    """
    tracer = current_tracer()
    if tracer is None:
        yield NOOP_SPAN
        return
    with tracer.span(name, **attrs) as sp:
        yield sp
