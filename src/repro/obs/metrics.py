"""Process-wide metrics registry: counters, gauges, histograms.

DiscoPoP treats its own profiling cost as a first-class result (PAPER.md
§V); this module gives the reproduction the same discipline for its
*service* instrumentation.  A :class:`MetricsRegistry` owns named
instruments — monotonic :class:`Counter`\\ s, point-in-time
:class:`Gauge`\\ s, and fixed-bucket :class:`Histogram`\\ s — and renders
them in the Prometheus text exposition format, which the analysis daemon
serves at ``/v1/metrics`` and the CLI fetches with ``repro metrics``.

Design constraints, in order:

* **stdlib only** — no ``prometheus_client``; the exposition format is
  simple enough to emit directly.
* **Thread-safe** — every update happens under the owning registry's lock
  (request handler threads, executor workers, and scrapes all share one
  registry).  :meth:`CacheStats.bump <repro.profiling.cache.CacheStats>`
  rides on the same convention.
* **Zero-alloc on the hot path** — ``inc``/``observe`` mutate
  pre-allocated ints and lists; bucket search is a branch ladder over a
  fixed bounds tuple.  No dicts or strings are built per update.
* **Globally disableable** — :func:`set_enabled` turns every instrument
  into a no-op so the benchmark harness can price the instrumentation
  itself (the ``obs_overhead`` section of ``BENCH_pipeline.json``).

Instruments are get-or-create by name: asking the registry twice for the
same name returns the same object, and asking with a conflicting kind or
label set raises.  Labelled families hand out per-label-set children via
``.labels(...)``; callers on hot paths should hold onto the child.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable, Sequence

#: Latency buckets (seconds) shared by every duration histogram: spans
#: interpreter-bound analyses (seconds) down to warm cache reads (sub-ms).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Process-wide instrumentation switch (see :func:`set_enabled`).
_enabled = True


def set_enabled(flag: bool) -> bool:
    """Turn all instrument updates on/off process-wide; returns the
    previous setting.  Disabling is how the perf harness measures the cost
    of the instrumentation itself; rendered values simply stop moving."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def metrics_enabled() -> bool:
    return _enabled


def _fmt_value(value: float) -> str:
    """Prometheus sample value: ints stay ints, floats use repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _fmt_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_suffix(labels: Sequence[tuple[str, Any]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing sample (``*_total`` by convention)."""

    kind = "counter"
    __slots__ = ("_labels", "_lock", "_value")

    def __init__(self, lock: threading.RLock, labels: tuple = ()) -> None:
        self._lock = lock
        self._labels = labels
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def samples(self, name: str) -> Iterable[str]:
        yield f"{name}{_label_suffix(self._labels)} {_fmt_value(self.value)}"


class Gauge:
    """Point-in-time sample; settable or backed by a callback.

    ``set_function`` binds a zero-argument callable evaluated at render
    time — the idiom for values another object already tracks (worker
    pool occupancy, queue depth) where sampling on a timer would go stale.
    """

    kind = "gauge"
    __slots__ = ("_fn", "_labels", "_lock", "_value")

    def __init__(self, lock: threading.RLock, labels: tuple = ()) -> None:
        self._lock = lock
        self._labels = labels
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._fn = None
            self._value = value

    def inc(self, amount: float = 1) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float] | None) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        # called outside the lock: the callback may take other locks
        try:
            return fn()
        except Exception:
            return float("nan")

    def samples(self, name: str) -> Iterable[str]:
        yield f"{name}{_label_suffix(self._labels)} {_fmt_value(self.value)}"


class Histogram:
    """Fixed-bucket distribution (cumulative buckets + sum + count).

    Bucket bounds are frozen at creation, so ``observe`` is a bisect over
    a tuple plus three in-place updates — nothing is allocated.
    """

    kind = "histogram"
    __slots__ = ("_counts", "_labels", "_lock", "_sum", "bounds")

    def __init__(
        self,
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: tuple = (),
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = lock
        self._labels = labels
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for bound, n in zip(self.bounds + (float("inf"),), counts):
            running += n
            out.append((bound, running))
        return out

    def samples(self, name: str) -> Iterable[str]:
        for bound, running in self.bucket_counts():
            labels = self._labels + (("le", _fmt_bound(bound)),)
            yield f"{name}_bucket{_label_suffix(labels)} {running}"
        suffix = _label_suffix(self._labels)
        yield f"{name}_sum{suffix} {_fmt_value(self.sum)}"
        yield f"{name}_count{suffix} {self.count}"


class LabelledFamily:
    """A named metric with per-label-set children (``.labels(stage=...)``)."""

    def __init__(
        self,
        kind: str,
        labelnames: tuple[str, ...],
        factory: Callable[[tuple], Any],
        lock: threading.RLock,
    ) -> None:
        self.kind = kind
        self.labelnames = labelnames
        self._factory = factory
        self._lock = lock
        self._children: dict[tuple, Any] = {}

    def labels(self, **labelvalues: Any):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"expected labels {list(self.labelnames)}, got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory(tuple(zip(self.labelnames, key)))
                self._children[key] = child
        return child

    def children(self) -> list[Any]:
        with self._lock:
            return [self._children[k] for k in sorted(self._children)]

    def samples(self, name: str) -> Iterable[str]:
        for child in self.children():
            yield from child.samples(name)


class MetricsRegistry:
    """Named instruments + Prometheus text rendering, under one lock.

    Get-or-create semantics make the registry safe to consult from
    anywhere: ``get_registry().counter("x_total").inc()`` is idempotent
    set-up plus an update, so instrumented modules need no wiring beyond
    the metric name.
    """

    def __init__(self) -> None:
        # RLock: a gauge callback evaluated during render() may itself
        # consult the registry.
        self._lock = threading.RLock()
        self._metrics: dict[str, Any] = {}
        self._help: dict[str, str] = {}

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        factory: Callable[[tuple], Any],
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                existing_labels = (
                    existing.labelnames
                    if isinstance(existing, LabelledFamily)
                    else ()
                )
                if existing.kind != kind or existing_labels != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {list(existing_labels)}"
                    )
                return existing
            if labelnames:
                metric = LabelledFamily(kind, labelnames, factory, self._lock)
            else:
                metric = factory(())
            self._metrics[name] = metric
            if help:
                self._help[name] = help
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter | LabelledFamily:
        return self._get_or_create(
            name, "counter", help, labelnames, lambda labels: Counter(self._lock, labels)
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge | LabelledFamily:
        return self._get_or_create(
            name, "gauge", help, labelnames, lambda labels: Gauge(self._lock, labels)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram | LabelledFamily:
        return self._get_or_create(
            name,
            "histogram",
            help,
            labelnames,
            lambda labels: Histogram(self._lock, buckets, labels),
        )

    def get(self, name: str):
        """The registered instrument/family, or None."""
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        lines: list[str] = []
        for name in self.names():
            metric = self.get(name)
            if metric is None:  # unregistered between names() and get()
                continue
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.samples(name))
        return "\n".join(lines) + "\n"


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module reports into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
