"""Observability: metrics registry, span tracing, structured logging.

The missing leg of the production story after perf (PR 1), fault
tolerance (PR 3), and serving (PR 4): *seeing* where time goes.  Three
stdlib-only pieces, documented in ``docs/observability.md``:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) rendered in the Prometheus
  text format at the daemon's ``/v1/metrics`` and via ``repro metrics``.
* :mod:`repro.obs.tracing` — hierarchical :class:`Span` trees
  (parse / profile / cache read / detector stages / job queue-wait / job
  run) collected by a thread-installed :class:`Tracer` and exported as the
  optional ``trace.spans`` block of the analysis document.
* :mod:`repro.obs.logs` — :class:`JsonLogger`, one JSON object per line
  with a per-job ``correlation_id`` bound once and carried through every
  layer's records.

Instrumentation must be cheap enough to leave on (the way DiscoPoP treats
its profiler's overhead as a first-class result): ``set_enabled(False)``
turns every instrument into a no-op, and ``benchmarks/
bench_pipeline_perf.py`` prices the difference as ``obs_overhead``,
budgeted at <5 % of the warm registry sweep.
"""

from repro.obs.logs import (
    JsonLogger,
    configure_logging,
    get_logger,
    new_correlation_id,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_enabled,
    set_registry,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    activate,
    current_tracer,
    ensure_tracer,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate",
    "configure_logging",
    "current_tracer",
    "ensure_tracer",
    "get_logger",
    "get_registry",
    "metrics_enabled",
    "new_correlation_id",
    "set_enabled",
    "set_registry",
    "span",
]
