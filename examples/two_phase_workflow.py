"""The DiscoPoP two-phase workflow: profile once, detect many times.

The paper's tool runs an instrumented binary whose output files feed later
analyses (Section II).  This example does the same through the library
API: profile a kernel with several differently-shaped workloads, merge and
save the profile to JSON, then reload it and run detection — without
re-executing the program.

Run with::

    python examples/two_phase_workflow.py
"""

import io

from repro import compile_source, summarize_patterns
from repro.bench_programs.workloads import vector
from repro.patterns.engine import analyze_profile
from repro.profiling import load_profile, profile_runs, save_profile

SOURCE = """\
float smooth_energy(float raw[], float smooth[], int n) {
    for (int i = 1; i < n - 1; i++) {
        smooth[i] = (raw[i - 1] + raw[i] + raw[i + 1]) / 3.0;
    }
    float energy = 0.0;
    for (int j = 1; j < n - 1; j++) {
        energy += smooth[j] * smooth[j];
    }
    return energy;
}
"""


def main() -> None:
    program = compile_source(SOURCE)

    # -- phase 1: instrumented runs with representative inputs, merged ----
    import numpy as np

    n = 96
    arg_sets = [
        [vector(n, dist, seed=3), np.zeros(n), n]
        for dist in ("uniform", "clustered", "sorted")
    ]
    profile = profile_runs(program, "smooth_energy", arg_sets)
    print(
        f"phase 1: profiled {profile.runs} runs, "
        f"{profile.total_cost} instructions, {len(profile.deps)} dependence "
        f"records, {len(profile.pairs)} dependent loop pair(s)"
    )

    buffer = io.StringIO()
    save_profile(profile, buffer)
    print(f"         serialized profile: {len(buffer.getvalue())} bytes of JSON")

    # -- phase 2: detection over the saved profile, no re-execution -------
    buffer.seek(0)
    reloaded = load_profile(buffer)
    result = analyze_profile(program, reloaded)
    print(f"phase 2: primary pattern = {summarize_patterns(result)}")
    for p in result.pipelines:
        print(
            f"         pipeline {result.program.regions[p.loop_x].name} -> "
            f"{result.program.regions[p.loop_y].name}: "
            f"a={p.a:.2f}, b={p.b:.2f}, e={p.efficiency:.3f}"
        )
    for loop, cands in result.reductions.items():
        for c in cands:
            print(
                f"         reduction on {c.var!r} at line {c.line} "
                f"(operator {c.operator})"
            )


if __name__ == "__main__":
    main()
