"""Multi-loop pipeline discovery, end to end (Section III-A).

Analyzes the reg_detect benchmark (Listing 2 of the paper): two dependent
hotspot loops where the second has inter-iteration dependences.  Shows

* the raw ``(i_x, i_y)`` iteration pairs the profiler recorded,
* the fitted regression coefficients a and b (Eq. 1) with their Table II
  interpretation,
* the efficiency factor e (Eq. 2), and
* the simulated two-stage pipeline schedule at increasing thread counts.

Run with::

    python examples/pipeline_discovery.py
"""

from repro.bench_programs import analyze_benchmark, get_benchmark
from repro.patterns.interpretation import interpret_a, interpret_b, interpret_efficiency
from repro.sim import plan_and_simulate


def main() -> None:
    spec = get_benchmark("reg_detect")
    print(f"Analyzing {spec.name} ({spec.suite}) ...\n")
    result = analyze_benchmark(spec.name)

    for (loop_x, loop_y), pairs in result.profile.pairs.items():
        name_x = result.program.regions[loop_x].name
        name_y = result.program.regions[loop_y].name
        print(f"Dependent loop pair: {name_x} -> {name_y}")
        print(f"  first 10 iteration pairs (i_x, i_y): {pairs[:10]}")

    for p in result.pipelines:
        print("\nRegression over the pairs (Eq. 1: Y = aX + b):")
        print(f"  a = {p.a:.3f}   -> {interpret_a(p.a)}")
        print(f"  b = {p.b:.3f}   -> {interpret_b(p.b)}")
        print(f"  e = {p.efficiency:.3f}   -> {interpret_efficiency(p.efficiency)}")
        print(f"  stage 1 classified as: {p.stage_x.classification.value}")
        print(f"  stage 2 classified as: {p.stage_y.classification.value}")

    outcome = plan_and_simulate(result)
    print("\nSimulated pipeline schedule (stage 1 do-all on P-1 threads,")
    print("stage 2 consuming as its dependences retire):")
    for threads, speedup in outcome.sweep.as_rows():
        bar = "#" * int(speedup * 10)
        print(f"  P={threads:3d}  {speedup:5.2f}x  {bar}")
    print(
        f"\nPaper reports {spec.paper.speedup}x at {spec.paper.threads} "
        f"threads for its hand-implemented pipeline."
    )


if __name__ == "__main__":
    main()
