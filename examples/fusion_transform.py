"""Detect loop fusion and actually apply it (Section III-A, "Loop Fusion").

Analyzes the 2mm kernel, detects that the two matrix-product nests are
fusable (both do-all, a=1, b=0), rewrites the program with
``repro.transform.fuse_loops``, verifies that the fused program computes
the same result, and compares the simulated speedups before/after fusion
(fusion removes one barrier and coarsens the parallel grain).

Run with::

    python examples/fusion_transform.py
"""

import numpy as np

from repro.bench_programs import analyze_benchmark, get_benchmark
from repro.lang.printer import format_program
from repro.patterns.engine import analyze
from repro.runtime import run_program
from repro.sim import plan_and_simulate
from repro.transform import fuse_loops


def main() -> None:
    spec = get_benchmark("2mm")
    result = analyze_benchmark("2mm")

    assert result.fusions, "expected a fusion candidate in 2mm"
    fusion = result.fusions[0]
    rx = result.program.regions[fusion.loop_x]
    ry = result.program.regions[fusion.loop_y]
    print(
        f"Fusion candidate: {rx.name} + {ry.name} "
        f"(a={fusion.pipeline.a}, b={fusion.pipeline.b}, "
        f"e={fusion.pipeline.efficiency:.3f})\n"
    )

    fused = fuse_loops(result.program, fusion.loop_x, fusion.loop_y)
    print("Fused program:")
    print(format_program(fused))

    # Semantics check: same output from original and fused versions.
    args = spec.arg_sets()[0]
    original = run_program(result.program, spec.entry, args)
    transformed = run_program(fused, spec.entry, args)
    assert np.allclose(original.arrays["D"], transformed.arrays["D"])
    print("Semantics check passed: fused program computes identical D.\n")

    fused_result = analyze(fused, spec.entry, [args])
    before = plan_and_simulate(result)
    after = plan_and_simulate(fused_result)
    print("Simulated speedups (original detected pattern vs fused do-all):")
    print(f"  before: {before.best_speedup:.2f}x at {before.best_threads} threads ({before.label})")
    print(f"  after:  {after.best_speedup:.2f}x at {after.best_threads} threads ({after.label})")


if __name__ == "__main__":
    main()
