"""Task-parallelism detection on cilksort — the paper's Figure 3.

Builds the CU graph of the BOTS `sort` benchmark's ``cilksort`` function,
runs Algorithm 1's fork/worker/barrier classification, checks which
barriers may run in parallel, and emits the classified graph as Graphviz
DOT text (write it to a file and render with ``dot -Tpng``).

Run with::

    python examples/task_graph_cilksort.py [out.dot]
"""

import sys

from repro.bench_programs import analyze_benchmark, get_benchmark
from repro.reporting.dot import cu_graph_dot


def main() -> None:
    spec = get_benchmark("sort")
    result = analyze_benchmark("sort")
    region = result.program.function("cilksort").region_id
    task = result.tasks[region]

    print("CU graph of cilksort():")
    for cu in task.cus:
        mark = task.marks.get(cu.cu_id, "?")
        callees = f" calls {cu.callees}" if cu.callees else ""
        print(f"  {cu.label:6s} {mark:8s} lines {sorted(cu.lines)}{callees}")

    print("\nEdges (A -> B means B depends on A):")
    for src, dst, data in sorted(task.graph.edges()):
        vars_txt = ",".join(sorted(data.get("vars") or [])) or data.get("kind")
        print(f"  CU_{src} -> CU_{dst}   [{vars_txt}]")

    print("\nBarrier parallelism (Section III-B):")
    for b1, b2 in task.parallel_barriers:
        print(f"  CU_{b1} and CU_{b2} can run in parallel (no path between them)")
    blocked = [
        (b1, b2)
        for b1 in task.barriers
        for b2 in task.barriers
        if b1 < b2 and (b1, b2) not in task.parallel_barriers
    ]
    for b1, b2 in blocked:
        print(f"  CU_{b1} and CU_{b2} cannot (a path orders them)")

    print(
        f"\nEstimated speedup (total / critical path): "
        f"{task.estimated_speedup:.2f} — paper Table V reports "
        f"{2.11} for sort."
    )

    dot = cu_graph_dot(task, title="cilksort CU graph (Figure 3)")
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as fh:
            fh.write(dot)
        print(f"\nDOT written to {sys.argv[1]}")
    else:
        print("\n" + dot)


if __name__ == "__main__":
    main()
