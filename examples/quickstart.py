"""Quickstart: detect parallel patterns in a small sequential program.

Run with::

    python examples/quickstart.py

The program below computes a normalized dot-product in three loops: the
first two are independent rescaling sweeps, the third accumulates.  The
detector finds the do-all loops, the reduction, and the task parallelism
between the two sweeps, and prints the classified report — the same output
the paper's tool hands a programmer before parallelization.
"""

import numpy as np

from repro import analysis_report, analyze_source
from repro.patterns import summarize_patterns
from repro.sim import plan_and_simulate

SOURCE = """\
float normdot(float A[], float B[], float SA[], float SB[], int n) {
    for (int i = 0; i < n; i++) {
        SA[i] = A[i] / (fabs(A[i]) + 1.0);
    }
    for (int j = 0; j < n; j++) {
        SB[j] = B[j] / (fabs(B[j]) + 1.0);
    }
    float dot = 0.0;
    for (int k = 0; k < n; k++) {
        dot += SA[k] * SB[k];
    }
    return dot;
}
"""


def main() -> None:
    n = 512
    rng = np.random.default_rng(1)
    result = analyze_source(
        SOURCE,
        entry="normdot",
        arg_sets=[[rng.random(n), rng.random(n), np.zeros(n), np.zeros(n), n]],
    )

    print(analysis_report(result))
    print(f"Detected primary pattern: {summarize_patterns(result)}")

    outcome = plan_and_simulate(result)
    print("\nSimulated speedups (threads -> speedup):")
    for threads, speedup in outcome.sweep.as_rows():
        print(f"  {threads:3d} -> {speedup:5.2f}x")
    print(
        f"Best: {outcome.best_speedup:.2f}x at {outcome.best_threads} threads"
    )


if __name__ == "__main__":
    main()
