"""Rank competing patterns and validate do-all claims empirically.

Two extensions beyond the paper's evaluation (its stated future work):

1. **Pattern ranking** — when several patterns apply to one program, rank
   them by simulated benefit per unit of transformation effort;
2. **Reordered-execution validation** — empirically confirm every do-all
   classification by re-running the program with the loop's iterations
   reversed, shuffled, and interleaved, comparing all observable outputs.

Run with::

    python examples/pattern_ranking.py
"""

import numpy as np

from repro import analyze_source, summarize_patterns
from repro.patterns.ranking import rank_patterns
from repro.reporting.tables import format_table
from repro.runtime.replay import ReplayError, validate_doall

SOURCE = """\
float image_stats(float img[], float smooth[], int n) {
    for (int p = 1; p < n - 1; p++) {
        smooth[p] = (img[p - 1] + img[p] + img[p + 1]) / 3.0;
    }
    float energy = 0.0;
    for (int q = 0; q < n; q++) {
        energy += smooth[q] * smooth[q];
    }
    return energy;
}
"""


def main() -> None:
    n = 256
    rng = np.random.default_rng(7)
    args = [rng.random(n), np.zeros(n), n]
    result = analyze_source(SOURCE, entry="image_stats", arg_sets=[args])

    print(f"Primary pattern: {summarize_patterns(result)}\n")

    options = rank_patterns(result)
    print(
        format_table(
            ["pattern", "best speedup", "threads", "effort", "benefit/effort", "structure"],
            [
                [o.label, o.best_speedup, o.best_threads, o.effort,
                 o.benefit_per_effort, o.supporting_structure]
                for o in options
            ],
            title="Applicable patterns, ranked (speedup simulated)",
        )
    )

    print("Empirical do-all validation (reordered execution):")
    program = result.program
    for region, lc in sorted(result.loop_classes.items()):
        if not lc.is_doall:
            continue
        name = program.regions[region].name
        try:
            ok = validate_doall(program, "image_stats", args, region)
        except ReplayError as exc:
            print(f"  {name}: not replayable ({exc})")
            continue
        verdict = "stable under reordering" if ok else "NOT stable — misclassified!"
        print(f"  {name}: {verdict}")


if __name__ == "__main__":
    main()
