"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517`` (or plain
``pip install -e .`` on newer pips) falls back to this shim.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
